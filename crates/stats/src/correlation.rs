//! Correlation coefficients.
//!
//! The frequency-scaling validation experiment (paper abstract: "correlation
//! coefficient = 99.7%+") uses Pearson's r between the parent workload's
//! performance-improvement series and the subset's. Spearman's rho and a
//! rank-agreement helper support the pathfinding rank-ordering experiment.

use crate::descriptive::mean;
use std::fmt;

/// Error produced by correlation routines on degenerate input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationError {
    /// Input series have different lengths.
    LengthMismatch {
        /// Length of the first series.
        left: usize,
        /// Length of the second series.
        right: usize,
    },
    /// Fewer than two paired observations were supplied.
    TooFewObservations,
    /// One of the series has zero variance, so the coefficient is undefined.
    ZeroVariance,
}

impl fmt::Display for CorrelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrelationError::LengthMismatch { left, right } => {
                write!(f, "series lengths differ: {left} vs {right}")
            }
            CorrelationError::TooFewObservations => {
                write!(f, "need at least two paired observations")
            }
            CorrelationError::ZeroVariance => {
                write!(f, "a series has zero variance; correlation is undefined")
            }
        }
    }
}

impl std::error::Error for CorrelationError {}

/// Pearson product-moment correlation coefficient between two series.
///
/// # Errors
///
/// Returns [`CorrelationError::LengthMismatch`] when the series lengths
/// differ, [`CorrelationError::TooFewObservations`] for fewer than two pairs,
/// and [`CorrelationError::ZeroVariance`] when either series is constant.
///
/// # Examples
///
/// ```
/// let xs = [1.0, 2.0, 3.0];
/// let ys = [10.0, 20.0, 30.0];
/// let r = subset3d_stats::pearson(&xs, &ys)?;
/// assert!((r - 1.0).abs() < 1e-12);
/// # Ok::<(), subset3d_stats::CorrelationError>(())
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, CorrelationError> {
    check_pair(xs, ys)?;
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(CorrelationError::ZeroVariance);
    }
    Ok(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation coefficient between two series.
///
/// Ties receive their average rank (fractional ranking), after which the
/// Pearson coefficient of the rank vectors is returned.
///
/// # Errors
///
/// Same conditions as [`pearson`], evaluated on the rank vectors.
///
/// # Examples
///
/// ```
/// // Monotone but non-linear relation: Spearman is exactly 1.
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [1.0, 8.0, 27.0, 64.0];
/// let rho = subset3d_stats::spearman(&xs, &ys)?;
/// assert!((rho - 1.0).abs() < 1e-12);
/// # Ok::<(), subset3d_stats::CorrelationError>(())
/// ```
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64, CorrelationError> {
    check_pair(xs, ys)?;
    let rx = fractional_ranks(xs);
    let ry = fractional_ranks(ys);
    pearson(&rx, &ry)
}

/// Fraction of positions whose rank order agrees between two series.
///
/// Both series are ranked (descending, so index 0 of the returned ordering is
/// the largest value) and the fraction of positions at which the two rank
/// permutations place the same element is returned. `1.0` means the two
/// series rank all candidates identically — the property a good workload
/// subset must have for architecture pathfinding.
///
/// # Errors
///
/// Returns [`CorrelationError::LengthMismatch`] or
/// [`CorrelationError::TooFewObservations`] on degenerate input.
///
/// # Examples
///
/// ```
/// let parent = [3.0, 1.0, 2.0];
/// let subset = [30.0, 10.0, 20.0];
/// let a = subset3d_stats::rank_agreement(&parent, &subset)?;
/// assert_eq!(a, 1.0);
/// # Ok::<(), subset3d_stats::CorrelationError>(())
/// ```
pub fn rank_agreement(xs: &[f64], ys: &[f64]) -> Result<f64, CorrelationError> {
    check_pair(xs, ys)?;
    let ox = descending_order(xs);
    let oy = descending_order(ys);
    let agree = ox.iter().zip(&oy).filter(|(a, b)| a == b).count();
    Ok(agree as f64 / xs.len() as f64)
}

fn check_pair(xs: &[f64], ys: &[f64]) -> Result<(), CorrelationError> {
    if xs.len() != ys.len() {
        return Err(CorrelationError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(CorrelationError::TooFewObservations);
    }
    Ok(())
}

/// Fractional (average-of-ties) ranks, 1-based.
fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Indices of `values` sorted descending by value (stable on ties).
fn descending_order(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_length_mismatch() {
        assert_eq!(
            pearson(&[1.0], &[1.0, 2.0]),
            Err(CorrelationError::LengthMismatch { left: 1, right: 2 })
        );
    }

    #[test]
    fn pearson_too_few() {
        assert_eq!(
            pearson(&[1.0], &[1.0]),
            Err(CorrelationError::TooFewObservations)
        );
    }

    #[test]
    fn pearson_zero_variance() {
        assert_eq!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(CorrelationError::ZeroVariance)
        );
    }

    #[test]
    fn pearson_known_value() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 1.0, 4.0, 3.0, 5.0];
        let r = pearson(&xs, &ys).unwrap();
        assert!((r - 0.8).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        let rho = spearman(&xs, &ys).unwrap();
        assert!((rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_invariant() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys_linear = [10.0, 20.0, 30.0, 40.0];
        let ys_exp = [1.0, 10.0, 100.0, 1000.0];
        let a = spearman(&xs, &ys_linear).unwrap();
        let b = spearman(&xs, &ys_exp).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn rank_agreement_partial() {
        // Descending orders: xs -> [2,1,0]; ys -> [2,0,1]. Only position 0 agrees.
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 1.0, 3.0];
        let a = rank_agreement(&xs, &ys).unwrap();
        assert!((a - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_ranks_average_ties() {
        let r = fractional_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn display_messages() {
        let e = CorrelationError::ZeroVariance;
        assert!(e.to_string().contains("zero variance"));
    }
}
