//! Descriptive statistics over `f64` slices.

/// Sum of the values.
///
/// Uses Kahan compensated summation so that corpus-scale accumulations
/// (hundreds of thousands of draw costs) do not drift.
///
/// # Examples
///
/// ```
/// assert_eq!(subset3d_stats::sum(&[1.0, 2.0, 3.0]), 6.0);
/// assert_eq!(subset3d_stats::sum(&[]), 0.0);
/// ```
pub fn sum(values: &[f64]) -> f64 {
    sum_iter(values.iter().copied())
}

/// Streaming [`sum`]: Kahan-compensated summation of an iterator, without
/// materialising a slice. Operation order matches [`sum`], so for the same
/// values the result is bit-identical.
///
/// # Examples
///
/// ```
/// assert_eq!(subset3d_stats::sum_iter((1..=3).map(f64::from)), 6.0);
/// ```
pub fn sum_iter(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0f64;
    let mut comp = 0.0f64;
    for v in values {
        let y = v - comp;
        let t = acc + y;
        comp = (t - acc) - y;
        acc = t;
    }
    acc
}

/// Arithmetic mean. Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(subset3d_stats::mean(&[2.0, 4.0]), 3.0);
/// assert_eq!(subset3d_stats::mean(&[]), 0.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    mean_iter(values.iter().copied())
}

/// Streaming [`mean`]: averages an iterator without materialising a slice.
/// Returns `0.0` for an empty iterator; bit-identical to [`mean`] over the
/// same values.
///
/// # Examples
///
/// ```
/// assert_eq!(subset3d_stats::mean_iter([2.0, 4.0]), 3.0);
/// assert_eq!(subset3d_stats::mean_iter(std::iter::empty()), 0.0);
/// ```
pub fn mean_iter(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0f64;
    let mut comp = 0.0f64;
    let mut n = 0u64;
    for v in values {
        let y = v - comp;
        let t = acc + y;
        comp = (t - acc) - y;
        acc = t;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

/// Geometric mean of strictly positive values.
///
/// Returns `0.0` for an empty slice. Non-positive entries are skipped, which
/// matches how speedup aggregation treats degenerate (zero-cost) samples.
///
/// # Examples
///
/// ```
/// let g = subset3d_stats::geometric_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for &v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Sample variance (Bessel-corrected, divisor `n - 1`).
///
/// Returns `0.0` when fewer than two values are supplied.
///
/// # Examples
///
/// ```
/// let v = subset3d_stats::variance(&[1.0, 2.0, 3.0]);
/// assert!((v - 1.0).abs() < 1e-12);
/// ```
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    ss / (values.len() - 1) as f64
}

/// Population variance (divisor `n`). Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// let v = subset3d_stats::population_variance(&[1.0, 3.0]);
/// assert!((v - 1.0).abs() < 1e-12);
/// ```
pub fn population_variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    ss / values.len() as f64
}

/// Sample standard deviation (square root of [`variance`]).
///
/// # Examples
///
/// ```
/// let s = subset3d_stats::std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert!(s > 0.0);
/// ```
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Minimum value, ignoring NaNs. Returns `None` for an empty slice or if
/// every entry is NaN.
///
/// # Examples
///
/// ```
/// assert_eq!(subset3d_stats::min(&[3.0, 1.0, 2.0]), Some(1.0));
/// assert_eq!(subset3d_stats::min(&[]), None);
/// ```
pub fn min(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.min(v)),
        })
}

/// Maximum value, ignoring NaNs. Returns `None` for an empty slice or if
/// every entry is NaN.
///
/// # Examples
///
/// ```
/// assert_eq!(subset3d_stats::max(&[3.0, 1.0, 2.0]), Some(3.0));
/// ```
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.max(v)),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_empty_is_zero() {
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn sum_is_compensated() {
        // Naive summation of 1e16 + many 1.0s loses the small addends.
        let mut values = vec![1e16];
        values.extend(std::iter::repeat_n(1.0, 1000));
        values.push(-1e16);
        assert_eq!(sum(&values), 1000.0);
    }

    #[test]
    fn mean_single() {
        assert_eq!(mean(&[42.0]), 42.0);
    }

    #[test]
    fn iter_variants_are_bit_identical_to_slice_variants() {
        let mut values = vec![1e16, 0.1, -7.25, 3.5e-3];
        values.extend((0..500).map(|i| (i as f64).sin()));
        assert_eq!(
            sum(&values).to_bits(),
            sum_iter(values.iter().copied()).to_bits()
        );
        assert_eq!(
            mean(&values).to_bits(),
            mean_iter(values.iter().copied()).to_bits()
        );
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn variance_known_value() {
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn population_variance_known_value() {
        let v = population_variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_skips_nonpositive() {
        let g = geometric_mean(&[0.0, -3.0, 1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_all_nonpositive_is_zero() {
        assert_eq!(geometric_mean(&[0.0, -1.0]), 0.0);
    }

    #[test]
    fn min_max_ignore_nan() {
        let vals = [f64::NAN, 2.0, 1.0, f64::NAN, 3.0];
        assert_eq!(min(&vals), Some(1.0));
        assert_eq!(max(&vals), Some(3.0));
    }

    #[test]
    fn min_max_all_nan_is_none() {
        assert_eq!(min(&[f64::NAN]), None);
        assert_eq!(max(&[f64::NAN]), None);
    }
}
