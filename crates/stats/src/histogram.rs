//! Fixed-width histograms, used to characterise draw-cost distributions.

use serde::{Deserialize, Serialize};

/// One bin of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramBin {
    /// Inclusive lower bound of the bin.
    pub lo: f64,
    /// Exclusive upper bound (inclusive for the last bin).
    pub hi: f64,
    /// Number of samples that fell in the bin.
    pub count: usize,
}

/// A fixed-width histogram over a closed range.
///
/// Values below the range clamp into the first bin and values above it clamp
/// into the last bin, so `total()` always equals the number of `add` calls —
/// a useful invariant for sanity-checking workload characterisation code.
///
/// # Examples
///
/// ```
/// use subset3d_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for v in [0.5, 1.5, 9.9, 25.0] {
///     h.add(v);
/// }
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.bins()[4].count, 2); // 9.9 and the clamped 25.0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            hi > lo,
            "histogram range must be non-empty (lo={lo}, hi={hi})"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one sample, clamping out-of-range values into the edge bins.
    pub fn add(&mut self, value: f64) {
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        let idx = if value <= self.lo {
            0
        } else if value >= self.hi {
            n - 1
        } else {
            (((value - self.lo) / width) as usize).min(n - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Total number of samples added.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no samples have been added yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The bins with their bounds and counts.
    pub fn bins(&self) -> Vec<HistogramBin> {
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &count)| HistogramBin {
                lo: self.lo + i as f64 * width,
                hi: self.lo + (i + 1) as f64 * width,
                count,
            })
            .collect()
    }

    /// Renders the histogram as a one-line unicode sparkline (one block
    /// character per bin, height proportional to the bin's share of the
    /// maximum count).
    ///
    /// # Examples
    ///
    /// ```
    /// use subset3d_stats::Histogram;
    ///
    /// let mut h = Histogram::new(0.0, 4.0, 4);
    /// h.extend([0.5, 1.5, 1.6, 1.7, 2.5]);
    /// let line = h.sparkline();
    /// assert_eq!(line.chars().count(), 4);
    /// ```
    pub fn sparkline(&self) -> String {
        const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return " ".repeat(self.counts.len());
        }
        self.counts
            .iter()
            .map(|&c| {
                let level = (c * (BLOCKS.len() - 1)).div_ceil(max); // ceil, 0 stays 0
                BLOCKS[level.min(BLOCKS.len() - 1)]
            })
            .collect()
    }

    /// Fraction of samples in each bin; all zeros when empty.
    pub fn normalized(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_counts_every_add() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([-5.0, 0.1, 0.5, 0.9, 5.0]);
        assert_eq!(h.total(), 5);
        let sum: usize = h.bins().iter().map(|b| b.count).sum();
        assert_eq!(sum, 5);
    }

    #[test]
    fn clamping_into_edges() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-1.0);
        h.add(2.0);
        assert_eq!(h.bins()[0].count, 1);
        assert_eq!(h.bins()[1].count, 1);
    }

    #[test]
    fn bin_bounds_tile_the_range() {
        let h = Histogram::new(0.0, 10.0, 5);
        let bins = h.bins();
        assert_eq!(bins[0].lo, 0.0);
        assert_eq!(bins[4].hi, 10.0);
        for w in bins.windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.extend([0.1, 0.2, 0.5, 0.9]);
        let s: f64 = h.normalized().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_empty_all_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.normalized(), vec![0.0, 0.0, 0.0]);
        assert!(h.is_empty());
    }

    #[test]
    fn sparkline_heights_follow_counts() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.extend([0.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5]);
        let line: Vec<char> = h.sparkline().chars().collect();
        assert_eq!(line.len(), 3);
        assert_eq!(line[1], '█', "fullest bin renders full block");
        assert_ne!(line[0], ' ', "non-empty bin renders visibly");
        assert_eq!(line[2], ' ', "empty bin renders blank");
    }

    #[test]
    fn sparkline_of_empty_histogram_is_blank() {
        let h = Histogram::new(0.0, 1.0, 5);
        assert_eq!(h.sparkline(), "     ");
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        Histogram::new(1.0, 0.0, 2);
    }
}
