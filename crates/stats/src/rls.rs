//! Recursive least squares: an online linear-regression estimator.
//!
//! The streaming service mode (after *An Online Learning Methodology for
//! Performance Modeling of Graphics Processors*) maintains a predicted-error
//! bound that must absorb one observation at a time without refitting from
//! scratch. RLS is the classic tool: each [`Rls::update`] folds one
//! `(features, target)` pair into the weight vector and inverse-covariance
//! matrix in O(d²), and [`Rls::predict`] evaluates the current model.
//!
//! With forgetting factor `λ = 1` and a weak prior (`p0` large), RLS
//! converges to the ordinary least-squares solution over everything seen so
//! far. The update is a deterministic function of the observation sequence,
//! so feeding the same stream in the same order — at any chunking — yields
//! bit-identical state.

/// Online linear regression via recursive least squares.
///
/// # Examples
///
/// ```
/// use subset3d_stats::Rls;
///
/// let mut rls = Rls::new(2, 1.0, 1e6);
/// for i in 0..50 {
///     let x = i as f64;
///     rls.update(&[1.0, x], 3.0 + 2.0 * x);
/// }
/// let y = rls.predict(&[1.0, 10.0]);
/// assert!((y - 23.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rls {
    dim: usize,
    lambda: f64,
    /// Weight vector, length `dim`.
    w: Vec<f64>,
    /// Inverse input-covariance estimate, row-major `dim × dim`.
    p: Vec<f64>,
    updates: u64,
}

impl Rls {
    /// Creates an estimator over `dim`-dimensional feature vectors.
    ///
    /// `lambda` is the forgetting factor in `(0, 1]` (`1.0` weighs all
    /// history equally); `p0` scales the initial inverse covariance `P =
    /// p0·I` — larger values mean a weaker prior on the zero weight vector.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero, `lambda` is outside `(0, 1]`, or `p0` is not
    /// strictly positive and finite.
    pub fn new(dim: usize, lambda: f64, p0: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "forgetting factor must be in (0, 1]"
        );
        assert!(p0 > 0.0 && p0.is_finite(), "p0 must be positive and finite");
        let mut p = vec![0.0; dim * dim];
        for i in 0..dim {
            p[i * dim + i] = p0;
        }
        Rls {
            dim,
            lambda,
            w: vec![0.0; dim],
            p,
            updates: 0,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of observations absorbed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The current weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// The current inverse-covariance estimate, row-major `dim × dim`.
    /// Exposed so snapshots can compare full estimator state bit-for-bit.
    pub fn covariance(&self) -> &[f64] {
        &self.p
    }

    /// Evaluates the current model at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        self.w.iter().zip(x).map(|(w, x)| w * x).sum()
    }

    /// Folds one observation `(x, y)` into the model.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn update(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let d = self.dim;
        // px = P·x
        let mut px = vec![0.0; d];
        for (i, slot) in px.iter_mut().enumerate() {
            let row = &self.p[i * d..(i + 1) * d];
            *slot = row.iter().zip(x).map(|(p, x)| p * x).sum();
        }
        // gain k = P·x / (λ + xᵀ·P·x)
        let denom = self.lambda + x.iter().zip(&px).map(|(x, p)| x * p).sum::<f64>();
        let gain: Vec<f64> = px.iter().map(|p| p / denom).collect();
        // w += k·(y − wᵀx)
        let err = y - self.predict(x);
        for (w, k) in self.w.iter_mut().zip(&gain) {
            *w += k * err;
        }
        // P = (P − k·(xᵀP)) / λ ; xᵀP == (P·x)ᵀ for symmetric P.
        for (row, &k) in self.p.chunks_exact_mut(d).zip(&gain) {
            for (cell, &pxj) in row.iter_mut().zip(&px) {
                *cell = (*cell - k * pxj) / self.lambda;
            }
        }
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_linear_function() {
        let mut rls = Rls::new(3, 1.0, 1e6);
        for i in 0..200 {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.11).cos();
            rls.update(&[1.0, a, b], 2.0 - 1.5 * a + 0.5 * b);
        }
        for (a, b) in [(0.3, -0.4), (-0.9, 0.2)] {
            let y = rls.predict(&[1.0, a, b]);
            let want = 2.0 - 1.5 * a + 0.5 * b;
            assert!((y - want).abs() < 1e-6, "predict {y} want {want}");
        }
    }

    #[test]
    fn deterministic_and_chunk_order_free() {
        // Two estimators fed the same sequence (regardless of how the caller
        // batches its loop) end in bit-identical state.
        let obs: Vec<([f64; 2], f64)> = (0..40)
            .map(|i| {
                let x = (i as f64 * 0.7).fract();
                ([1.0, x], 1.0 + 3.0 * x)
            })
            .collect();
        let mut a = Rls::new(2, 1.0, 1e4);
        let mut b = Rls::new(2, 1.0, 1e4);
        for (x, y) in &obs {
            a.update(x, *y);
        }
        for chunk in obs.chunks(7) {
            for (x, y) in chunk {
                b.update(x, *y);
            }
        }
        assert_eq!(a, b);
        assert_eq!(a.updates(), 40);
    }

    #[test]
    fn forgetting_tracks_a_drifting_target() {
        // λ < 1 lets the model follow a target that changes mid-stream.
        let mut rls = Rls::new(2, 0.9, 1e4);
        for i in 0..100 {
            let x = (i as f64 * 0.13).fract();
            rls.update(&[1.0, x], 1.0 + x);
        }
        for i in 0..200 {
            let x = (i as f64 * 0.13).fract();
            rls.update(&[1.0, x], 5.0 - 2.0 * x);
        }
        let y = rls.predict(&[1.0, 0.5]);
        assert!((y - 4.0).abs() < 0.1, "tracked prediction {y}");
    }

    #[test]
    fn single_observation_moves_toward_target() {
        let mut rls = Rls::new(1, 1.0, 1e8);
        rls.update(&[1.0], 7.0);
        // With a near-flat prior one update lands almost exactly on y.
        assert!((rls.predict(&[1.0]) - 7.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        Rls::new(0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn bad_lambda_rejected() {
        Rls::new(2, 1.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_update_rejected() {
        Rls::new(2, 1.0, 1.0).update(&[1.0], 0.0);
    }
}
