//! Ordinary least-squares linear regression on one predictor.

use crate::correlation::CorrelationError;
use crate::descriptive::mean;
use serde::{Deserialize, Serialize};

/// Result of an ordinary least-squares fit `y ≈ slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (R²) of the fit.
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted `y` for a given `x`.
    ///
    /// # Examples
    ///
    /// ```
    /// let fit = subset3d_stats::linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0])?;
    /// assert!((fit.predict(3.0) - 7.0).abs() < 1e-9);
    /// # Ok::<(), subset3d_stats::CorrelationError>(())
    /// ```
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y ≈ slope * x + intercept` by ordinary least squares.
///
/// # Errors
///
/// Returns [`CorrelationError::LengthMismatch`] when series lengths differ,
/// [`CorrelationError::TooFewObservations`] for fewer than two pairs, and
/// [`CorrelationError::ZeroVariance`] when `xs` is constant.
///
/// # Examples
///
/// ```
/// let fit = subset3d_stats::linear_fit(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0])?;
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!(fit.intercept.abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// # Ok::<(), subset3d_stats::CorrelationError>(())
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<LinearFit, CorrelationError> {
    if xs.len() != ys.len() {
        return Err(CorrelationError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(CorrelationError::TooFewObservations);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    if sxx == 0.0 {
        return Err(CorrelationError::ZeroVariance);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    // R² = 1 - SS_res / SS_tot; define R² = 1 when ys is constant (perfect fit
    // by the horizontal line).
    let ss_tot: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let fit = linear_fit(&[0.0, 1.0, 2.0, 3.0], &[5.0, 7.0, 9.0, 11.0]).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 5.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_r2_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.98 && fit.r_squared < 1.0);
    }

    #[test]
    fn constant_y_is_perfect_flat_fit() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 4.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn constant_x_errors() {
        assert_eq!(
            linear_fit(&[2.0, 2.0], &[1.0, 3.0]),
            Err(CorrelationError::ZeroVariance)
        );
    }

    #[test]
    fn length_mismatch_errors() {
        assert!(matches!(
            linear_fit(&[1.0, 2.0], &[1.0]),
            Err(CorrelationError::LengthMismatch { .. })
        ));
    }
}
