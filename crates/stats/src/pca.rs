//! Principal component analysis via power iteration with deflation.
//!
//! Operates on plain `&[Vec<f64>]` row data so that any crate in the
//! workspace can project points without depending on the feature-matrix
//! types; the clustering backends use it to decorrelate feature vectors
//! before agglomerative merging.

use std::fmt;

/// Error produced when PCA cannot be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcaError {
    /// Fewer than two rows were supplied.
    TooFewRows,
    /// More components requested than dimensions exist.
    TooManyComponents {
        /// Components requested.
        requested: usize,
        /// Dimensionality available.
        available: usize,
    },
    /// The rows do not all share one dimensionality.
    RaggedRows,
}

impl fmt::Display for PcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcaError::TooFewRows => write!(f, "PCA needs at least two rows"),
            PcaError::TooManyComponents {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} components but only {available} dimensions exist"
                )
            }
            PcaError::RaggedRows => write!(f, "PCA rows must share one dimensionality"),
        }
    }
}

impl std::error::Error for PcaError {}

/// A fitted PCA model: the top-k principal directions of a row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    mean: Vec<f64>,
    components: Vec<Vec<f64>>,
    explained_variance: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits the top `k` principal components of `rows`.
    ///
    /// # Errors
    ///
    /// Returns [`PcaError::TooFewRows`] for fewer than two rows,
    /// [`PcaError::TooManyComponents`] when `k` exceeds the row
    /// dimensionality, and [`PcaError::RaggedRows`] when rows disagree on
    /// dimensionality.
    pub fn fit(rows: &[Vec<f64>], k: usize) -> Result<Self, PcaError> {
        let n = rows.len();
        if n < 2 {
            return Err(PcaError::TooFewRows);
        }
        let d = rows[0].len();
        if rows.iter().any(|r| r.len() != d) {
            return Err(PcaError::RaggedRows);
        }
        if k > d {
            return Err(PcaError::TooManyComponents {
                requested: k,
                available: d,
            });
        }

        let mut mean = vec![0.0; d];
        for row in rows {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }

        // Covariance matrix (d×d), fine for the small dimensionalities the
        // feature pipeline produces (d ≈ 20).
        let mut cov = vec![vec![0.0; d]; d];
        for row in rows {
            for i in 0..d {
                let di = row[i] - mean[i];
                for j in i..d {
                    cov[i][j] += di * (row[j] - mean[j]);
                }
            }
        }
        // Index-based on purpose: the upper triangle is mirrored into the
        // lower one, so both `cov[i]` and `cov[j]` are written per step.
        #[allow(clippy::needless_range_loop)]
        for i in 0..d {
            for j in i..d {
                cov[i][j] /= (n - 1) as f64;
                cov[j][i] = cov[i][j];
            }
        }
        let total_variance: f64 = (0..d).map(|i| cov[i][i]).sum();

        let mut components = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);
        let mut work = cov;
        for c in 0..k {
            let (vector, value) = dominant_eigenpair(&work, 1 + c as u64);
            if value <= 1e-12 {
                // Remaining variance is numerically zero; stop early.
                break;
            }
            deflate(&mut work, &vector, value);
            components.push(vector);
            explained.push(value);
        }

        Ok(Pca {
            mean,
            components,
            explained_variance: explained,
            total_variance,
        })
    }

    /// The principal directions (unit vectors), strongest first.
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components
    }

    /// Variance captured by each returned component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by the returned components.
    pub fn explained_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 1.0;
        }
        self.explained_variance.iter().sum::<f64>() / self.total_variance
    }

    /// Projects one row onto the fitted components.
    pub fn project(&self, row: &[f64]) -> Vec<f64> {
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(row.iter().zip(&self.mean))
                    .map(|(ci, (&v, &m))| ci * (v - m))
                    .sum()
            })
            .collect()
    }
}

/// Power iteration for the dominant eigenpair of a symmetric matrix.
fn dominant_eigenpair(m: &[Vec<f64>], seed: u64) -> (Vec<f64>, f64) {
    let d = m.len();
    // Deterministic pseudo-random start vector (splitmix-style hash).
    let mut v: Vec<f64> = (0..d)
        .map(|i| {
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58476D1CE4E5B9);
            x ^= x >> 27;
            (x as f64 / u64::MAX as f64) - 0.5
        })
        .collect();
    normalize(&mut v);
    let mut value = 0.0;
    for _ in 0..300 {
        let mut next = vec![0.0; d];
        for (i, next_i) in next.iter_mut().enumerate() {
            *next_i = m[i].iter().zip(&v).map(|(a, b)| a * b).sum();
        }
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm <= 1e-300 {
            return (v, 0.0);
        }
        for x in &mut next {
            *x /= norm;
        }
        let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
        v = next;
        value = norm;
        if delta < 1e-12 {
            break;
        }
    }
    (v, value)
}

fn deflate(m: &mut [Vec<f64>], vector: &[f64], value: f64) {
    let d = m.len();
    for i in 0..d {
        for j in 0..d {
            m[i][j] -= value * vector[i] * vector[j];
        }
    }
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points along y = 2x with tiny perpendicular noise.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = i as f64 / 10.0;
                let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![t + noise * 2.0, 2.0 * t - noise]
            })
            .collect();
        let pca = Pca::fit(&rows, 1).unwrap();
        let c = &pca.components()[0];
        let slope = c[1] / c[0];
        assert!((slope - 2.0).abs() < 0.01, "slope {slope}");
        assert!(pca.explained_ratio() > 0.99);
    }

    #[test]
    fn components_are_orthonormal() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let x = (i as f64 * 0.7).sin() * 3.0;
                let y = (i as f64 * 1.3).cos() * 2.0;
                let z = (i as f64 * 2.1).sin();
                vec![x, y, z]
            })
            .collect();
        let pca = Pca::fit(&rows, 3).unwrap();
        let cs = pca.components();
        for i in 0..cs.len() {
            let norm: f64 = cs[i].iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-6, "component {i} norm {norm}");
            for j in i + 1..cs.len() {
                let dot: f64 = cs[i].iter().zip(&cs[j]).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-6, "components {i},{j} dot {dot}");
            }
        }
    }

    #[test]
    fn explained_variances_descend() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i as f64 * 0.1).sin(), 0.01 * i as f64])
            .collect();
        let pca = Pca::fit(&rows, 3).unwrap();
        let ev = pca.explained_variance();
        for w in ev.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn projection_dimension_matches_components() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![i as f64, 2.0 * i as f64, 0.0])
            .collect();
        let pca = Pca::fit(&rows, 2).unwrap();
        let p = pca.project(&rows[3]);
        assert_eq!(p.len(), pca.components().len());
    }

    #[test]
    fn constant_data_stops_early() {
        let rows: Vec<Vec<f64>> = (0..10).map(|_| vec![1.0, 2.0]).collect();
        let pca = Pca::fit(&rows, 2).unwrap();
        assert!(pca.components().is_empty());
        assert_eq!(pca.explained_ratio(), 1.0);
    }

    #[test]
    fn errors_on_degenerate_input() {
        let one = vec![vec![1.0, 2.0]];
        assert_eq!(Pca::fit(&one, 1), Err(PcaError::TooFewRows));
        let two = vec![vec![1.0, 2.0], vec![2.0, 3.0]];
        assert!(matches!(
            Pca::fit(&two, 5),
            Err(PcaError::TooManyComponents {
                requested: 5,
                available: 2
            })
        ));
        let ragged = vec![vec![1.0, 2.0], vec![2.0]];
        assert_eq!(Pca::fit(&ragged, 1), Err(PcaError::RaggedRows));
    }

    #[test]
    fn deterministic_across_fits() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64 * 0.3).sin(), (i as f64 * 0.9).cos()])
            .collect();
        assert_eq!(Pca::fit(&rows, 2).unwrap(), Pca::fit(&rows, 2).unwrap());
    }
}
