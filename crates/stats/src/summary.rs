//! One-shot descriptive summary of a sample.

use crate::descriptive::{max, mean, min, std_dev, sum};
use crate::percentile::median;
use serde::{Deserialize, Serialize};

/// Descriptive summary of a sample: count, sum, mean, spread and extremes.
///
/// # Examples
///
/// ```
/// use subset3d_stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count, 4);
/// assert_eq!(s.sum, 10.0);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.median, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Compensated sum of samples.
    pub sum: f64,
    /// Arithmetic mean (`0.0` when empty).
    pub mean: f64,
    /// Median (`0.0` when empty).
    pub median: f64,
    /// Sample standard deviation (`0.0` when fewer than two samples).
    pub std_dev: f64,
    /// Minimum (`0.0` when empty).
    pub min: f64,
    /// Maximum (`0.0` when empty).
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a slice. Degenerate fields default to `0.0`
    /// on empty input so summaries remain printable.
    pub fn of(values: &[f64]) -> Self {
        Summary {
            count: values.len(),
            sum: sum(values),
            mean: mean(values),
            median: median(values).unwrap_or(0.0),
            std_dev: std_dev(values),
            min: min(values).unwrap_or(0.0),
            max: max(values).unwrap_or(0.0),
        }
    }

    /// Coefficient of variation (`std_dev / mean`), or `0.0` when the mean
    /// is zero. A scale-free spread measure used to compare the cost
    /// dispersion of clusters with very different magnitudes.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} median={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.median, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.median, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn cv_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn cv_known() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        let s2 = Summary::of(&[1.0, 3.0]);
        assert!((s2.coefficient_of_variation() - (2.0f64).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_not_empty() {
        let s = Summary::of(&[1.0]);
        assert!(!format!("{s}").is_empty());
    }
}
