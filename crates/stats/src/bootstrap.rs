//! Bootstrap confidence intervals.
//!
//! The frequency-scaling experiments report correlation coefficients from a
//! handful of sweep points; a bootstrap CI quantifies how stable those
//! coefficients are under resampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-sided bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
    /// Point estimate on the full sample.
    pub estimate: f64,
}

/// Percentile-bootstrap confidence interval of a paired statistic.
///
/// Resamples index pairs with replacement `resamples` times, evaluates
/// `statistic` on each resample (resamples where the statistic is undefined
/// — e.g. zero variance — are skipped), and returns the
/// `[(1-level)/2, (1+level)/2]` percentile interval. Deterministic for a
/// seed.
///
/// Returns `None` when the inputs are shorter than two pairs, the lengths
/// differ, the full-sample statistic is undefined, or every resample was
/// skipped.
///
/// # Examples
///
/// ```
/// use subset3d_stats::{bootstrap_paired_ci, pearson};
///
/// let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + (x * 0.7).sin()).collect();
/// let ci = bootstrap_paired_ci(&xs, &ys, |a, b| pearson(a, b).ok(), 500, 0.95, 7).unwrap();
/// assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
/// assert!(ci.lo > 0.9);
/// ```
pub fn bootstrap_paired_ci<F>(
    xs: &[f64],
    ys: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapCi>
where
    F: Fn(&[f64], &[f64]) -> Option<f64>,
{
    if xs.len() != ys.len() || xs.len() < 2 || resamples == 0 {
        return None;
    }
    if !(0.0..1.0).contains(&level) {
        return None;
    }
    let estimate = statistic(xs, ys)?;
    let n = xs.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(resamples);
    let mut rx = vec![0.0; n];
    let mut ry = vec![0.0; n];
    for _ in 0..resamples {
        for i in 0..n {
            let j = rng.gen_range(0..n);
            rx[i] = xs[j];
            ry[i] = ys[j];
        }
        if let Some(v) = statistic(&rx, &ry) {
            values.push(v);
        }
    }
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - level) / 2.0;
    let pick = |q: f64| {
        let idx = ((values.len() - 1) as f64 * q).round() as usize;
        values[idx]
    };
    Some(BootstrapCi {
        lo: pick(alpha),
        hi: pick(1.0 - alpha),
        estimate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::pearson;

    fn noisy_linear(n: usize) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 3.0 * x + (x * 1.3).sin() * 2.0)
            .collect();
        (xs, ys)
    }

    #[test]
    fn interval_brackets_estimate() {
        let (xs, ys) = noisy_linear(40);
        let ci = bootstrap_paired_ci(&xs, &ys, |a, b| pearson(a, b).ok(), 400, 0.9, 1).unwrap();
        assert!(ci.lo <= ci.estimate);
        assert!(ci.estimate <= ci.hi);
        assert!(ci.hi <= 1.0 + 1e-12);
    }

    #[test]
    fn deterministic_for_seed() {
        let (xs, ys) = noisy_linear(25);
        let a = bootstrap_paired_ci(&xs, &ys, |a, b| pearson(a, b).ok(), 200, 0.95, 9);
        let b = bootstrap_paired_ci(&xs, &ys, |a, b| pearson(a, b).ok(), 200, 0.95, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn wider_level_wider_interval() {
        let (xs, ys) = noisy_linear(20);
        let narrow = bootstrap_paired_ci(&xs, &ys, |a, b| pearson(a, b).ok(), 400, 0.5, 3).unwrap();
        let wide = bootstrap_paired_ci(&xs, &ys, |a, b| pearson(a, b).ok(), 400, 0.99, 3).unwrap();
        assert!(wide.hi - wide.lo >= narrow.hi - narrow.lo - 1e-12);
    }

    #[test]
    fn degenerate_inputs_none() {
        assert!(
            bootstrap_paired_ci(&[1.0], &[1.0], |a, b| pearson(a, b).ok(), 10, 0.9, 0).is_none()
        );
        assert!(
            bootstrap_paired_ci(&[1.0, 2.0], &[1.0], |a, b| pearson(a, b).ok(), 10, 0.9, 0)
                .is_none()
        );
        // Constant series: full-sample statistic undefined.
        assert!(bootstrap_paired_ci(
            &[1.0, 1.0, 1.0],
            &[1.0, 2.0, 3.0],
            |a, b| pearson(a, b).ok(),
            10,
            0.9,
            0
        )
        .is_none());
        // Bad level.
        let (xs, ys) = noisy_linear(10);
        assert!(bootstrap_paired_ci(&xs, &ys, |a, b| pearson(a, b).ok(), 10, 1.5, 0).is_none());
    }
}
