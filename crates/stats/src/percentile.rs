//! Percentiles and medians (linear-interpolation definition, type 7).

/// Percentile of `values` at `p` in `[0, 100]`, using linear interpolation
/// between closest ranks (the same definition as NumPy's default).
///
/// Returns `None` for an empty slice or if any value is NaN — a rank has
/// no meaning in an unordered multiset, and measurement code upstream
/// must not be taken down by one bad sample.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` (a caller bug, not a data
/// property).
///
/// # Examples
///
/// ```
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(subset3d_stats::percentile(&v, 50.0), Some(2.5));
/// assert_eq!(subset3d_stats::percentile(&v, 0.0), Some(1.0));
/// assert_eq!(subset3d_stats::percentile(&v, 100.0), Some(4.0));
/// assert_eq!(subset3d_stats::percentile(&[1.0, f64::NAN], 50.0), None);
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be in [0, 100], got {p}"
    );
    let sorted = sorted_finite_ranks(values)?;
    Some(percentile_sorted(&sorted, p))
}

/// Sorts `values` for rank lookups; `None` for empty or NaN-bearing
/// input.
fn sorted_finite_ranks(values: &[f64]) -> Option<Vec<f64>> {
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(sorted)
}

/// Percentile of an already-sorted slice. See [`percentile`].
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 50th [`percentile`]). Returns `None` for an empty slice
/// or NaN-bearing input.
///
/// # Examples
///
/// ```
/// assert_eq!(subset3d_stats::median(&[3.0, 1.0, 2.0]), Some(2.0));
/// assert_eq!(subset3d_stats::median(&[1.0, 2.0]), Some(1.5));
/// ```
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// A fixed set of commonly reported percentiles, computed in one sort.
///
/// # Examples
///
/// ```
/// let p = subset3d_stats::Percentiles::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(p.p50, 3.0);
/// assert_eq!(p.p0, 1.0);
/// assert_eq!(p.p100, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Percentiles {
    /// Minimum (0th percentile).
    pub p0: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum (100th percentile).
    pub p100: f64,
}

impl Percentiles {
    /// Computes the percentile set; returns `None` for an empty slice or
    /// NaN-bearing input (see [`percentile`]).
    pub fn of(values: &[f64]) -> Option<Self> {
        let sorted = sorted_finite_ranks(values)?;
        Some(Percentiles {
            p0: percentile_sorted(&sorted, 0.0),
            p25: percentile_sorted(&sorted, 25.0),
            p50: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
            p100: percentile_sorted(&sorted, 100.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(median(&[]), None);
        assert!(Percentiles::of(&[]).is_none());
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 100.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 33.3), Some(7.0));
    }

    #[test]
    fn interpolation() {
        let v = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&v, 25.0), Some(15.0));
        assert_eq!(percentile(&v, 75.0), Some(25.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_panics() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn percentiles_ordered() {
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let p = Percentiles::of(&vals).unwrap();
        assert!(p.p0 <= p.p25 && p.p25 <= p.p50 && p.p50 <= p.p75);
        assert!(p.p75 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p100);
    }

    #[test]
    fn unsorted_input_ok() {
        assert_eq!(median(&[5.0, 1.0, 4.0, 2.0, 3.0]), Some(3.0));
    }

    #[test]
    fn nan_input_returns_none() {
        assert_eq!(percentile(&[1.0, f64::NAN, 3.0], 50.0), None);
        assert_eq!(percentile(&[f64::NAN], 0.0), None);
        assert_eq!(median(&[f64::NAN, 1.0]), None);
        assert!(Percentiles::of(&[2.0, f64::NAN]).is_none());
    }

    #[test]
    fn infinities_are_ranked_not_rejected() {
        // Only NaN is unrankable; infinities sort to the extremes.
        let v = [f64::NEG_INFINITY, 1.0, f64::INFINITY];
        assert_eq!(percentile(&v, 50.0), Some(1.0));
        let p = Percentiles::of(&v).unwrap();
        assert_eq!(p.p0, f64::NEG_INFINITY);
        assert_eq!(p.p100, f64::INFINITY);
    }
}
