//! Metamorphic invariant checkers.
//!
//! Each checker states a relation the model must satisfy between a run and
//! a transformed re-run — no ground truth needed, so they hold for *any*
//! workload. All return `Result<(), String>` with a readable violation
//! message, usable from plain `#[test]`s (`.unwrap()`) and from
//! `proptest!` properties (`prop_assert!(r.is_ok(), "{:?}", r)`).
//!
//! Two deliberate tolerance choices, both rooted in float-summation order:
//!
//! * **Draw permutation** compares *isolated* (warmth-free) draw costs —
//!   in-context costs are legitimately order-dependent through the
//!   texture-warmth window — and compares totals within a relative
//!   epsilon, because reordering the sum reorders the roundings.
//! * **Cluster relabeling** also uses an epsilon: permuting cluster order
//!   permutes the order in which per-cluster predictions are added.
//!
//! Everything else is exact.

use subset3d_cluster::Subsetter as SubsetterBackend;
use subset3d_core::{predict_frame, FrameClustering};
use subset3d_gpusim::{ArchConfig, CacheMode, FrameCost, Simulator};
use subset3d_trace::{Frame, Workload};

/// Relative tolerance for comparisons whose float-summation *order*
/// legitimately changes (see module docs). Generous for round-off, far
/// below any real model change.
pub const SUM_ORDER_EPSILON: f64 = 1e-9;

fn relative_close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= SUM_ORDER_EPSILON * scale
}

/// **Frequency monotonicity**: raising only the core clock never makes the
/// workload slower. Checks that total time is non-increasing along an
/// ascending clock sweep.
///
/// # Errors
///
/// Returns the first adjacent clock pair that violates monotonicity, or a
/// simulator failure message.
pub fn check_frequency_monotone(
    workload: &Workload,
    base: &ArchConfig,
    ascending_clocks_mhz: &[f64],
) -> Result<(), String> {
    let mut prev: Option<(f64, f64)> = None;
    for &mhz in ascending_clocks_mhz {
        if let Some((prev_mhz, _)) = prev {
            if mhz <= prev_mhz {
                return Err(format!(
                    "clock sweep must ascend: {prev_mhz} MHz then {mhz} MHz"
                ));
            }
        }
        let sim = Simulator::new(base.with_core_clock(mhz));
        let total = sim
            .simulate_workload(workload)
            .map_err(|e| format!("simulation at {mhz} MHz failed: {e}"))?
            .total_ns;
        if let Some((prev_mhz, prev_total)) = prev {
            if total > prev_total {
                return Err(format!(
                    "slower at higher clock: {prev_total} ns at {prev_mhz} MHz \
                     but {total} ns at {mhz} MHz"
                ));
            }
        }
        prev = Some((mhz, total));
    }
    Ok(())
}

/// **Cache transparency**: the memo cache is an optimisation, not a model
/// input — `Auto`, `On` and `Off` must produce bit-identical workload
/// costs, including on a second pass served from warm caches.
///
/// # Errors
///
/// Returns the first cache mode and pass whose total differs from the
/// `Off` baseline, or a simulator failure message.
pub fn check_cache_modes_identical(workload: &Workload, config: &ArchConfig) -> Result<(), String> {
    let baseline = {
        let sim = Simulator::new(config.clone());
        sim.set_cache_mode(CacheMode::Off);
        sim.simulate_workload(workload)
            .map_err(|e| format!("baseline simulation failed: {e}"))?
    };
    for mode in [CacheMode::Auto, CacheMode::On, CacheMode::Off] {
        let sim = Simulator::new(config.clone());
        sim.set_cache_mode(mode);
        for pass in 0..2 {
            let cost = sim
                .simulate_workload(workload)
                .map_err(|e| format!("{mode:?} pass {pass} failed: {e}"))?;
            if cost.total_ns.to_bits() != baseline.total_ns.to_bits() {
                return Err(format!(
                    "cache mode {mode:?} pass {pass} changed the result: \
                     {} vs baseline {}",
                    cost.total_ns, baseline.total_ns
                ));
            }
            for (fi, (f, bf)) in cost.frames.iter().zip(&baseline.frames).enumerate() {
                if f.total_ns.to_bits() != bf.total_ns.to_bits() {
                    return Err(format!(
                        "cache mode {mode:?} pass {pass} changed frame {fi}: \
                         {} vs baseline {}",
                        f.total_ns, bf.total_ns
                    ));
                }
            }
        }
    }
    Ok(())
}

/// **Draw-permutation invariance**: a frame's *isolated* cost — the sum of
/// its draws each simulated cold, outside any warmth context — does not
/// depend on submission order. (In-context frame cost legitimately does,
/// through the cross-draw texture-warmth window; that context dependence
/// is a modelled effect, not a bug.)
///
/// `permutation` maps new position → original draw index and must be a
/// permutation of `0..frame.draw_count()`.
///
/// # Errors
///
/// Returns a message when the permuted isolated total leaves the
/// [`SUM_ORDER_EPSILON`] band, when `permutation` is malformed, or when
/// simulation fails.
pub fn check_draw_permutation(
    frame: &Frame,
    workload: &Workload,
    config: &ArchConfig,
    permutation: &[usize],
) -> Result<(), String> {
    let draws = frame.to_draws();
    if permutation.len() != draws.len() {
        return Err(format!(
            "permutation length {} != draw count {}",
            permutation.len(),
            draws.len()
        ));
    }
    let mut seen = vec![false; draws.len()];
    for &p in permutation {
        if p >= draws.len() || seen[p] {
            return Err(format!("not a permutation: index {p}"));
        }
        seen[p] = true;
    }
    let sim = Simulator::new(config.clone());
    let mut original = 0.0;
    for draw in &draws {
        original += sim
            .simulate_draw(draw, workload)
            .map_err(|e| format!("isolated draw failed: {e}"))?
            .time_ns;
    }
    let mut permuted = 0.0;
    for &p in permutation {
        permuted += sim
            .simulate_draw(&draws[p], workload)
            .map_err(|e| format!("isolated draw failed: {e}"))?
            .time_ns;
    }
    if !relative_close(original, permuted) {
        return Err(format!(
            "isolated frame cost depends on draw order: {original} ns \
             original vs {permuted} ns permuted"
        ));
    }
    Ok(())
}

/// **Cluster-relabeling invariance**: prediction quality depends on the
/// partition, not on how clusters happen to be numbered or ordered.
/// Reorders `clustering.clusters` by `permutation` and checks that
/// predicted time and prediction error are unchanged (within
/// [`SUM_ORDER_EPSILON`]: the per-cluster sum is reordered).
///
/// # Errors
///
/// Returns a message when predictions move, when `permutation` is
/// malformed, or when the clustering and cost disagree on draw count.
pub fn check_cluster_relabeling(
    clustering: &FrameClustering,
    cost: &FrameCost,
    permutation: &[usize],
) -> Result<(), String> {
    if permutation.len() != clustering.clusters.len() {
        return Err(format!(
            "permutation length {} != cluster count {}",
            permutation.len(),
            clustering.clusters.len()
        ));
    }
    let mut seen = vec![false; permutation.len()];
    for &p in permutation {
        if p >= permutation.len() || seen[p] {
            return Err(format!("not a permutation: index {p}"));
        }
        seen[p] = true;
    }
    let relabeled = FrameClustering {
        clusters: permutation
            .iter()
            .map(|&p| clustering.clusters[p].clone())
            .collect(),
        draw_count: clustering.draw_count,
    };
    let before = predict_frame(clustering, cost);
    let after = predict_frame(&relabeled, cost);
    if !relative_close(before.predicted_ns, after.predicted_ns) {
        return Err(format!(
            "relabeling moved the prediction: {} ns vs {} ns",
            before.predicted_ns, after.predicted_ns
        ));
    }
    if !relative_close(before.error(), after.error()) {
        return Err(format!(
            "relabeling moved the prediction error: {} vs {}",
            before.error(),
            after.error()
        ));
    }
    Ok(())
}

/// **Backend partition contract**: a [`SubsetterBackend`] fit over any
/// point set must be a valid partition with exactly one in-cluster
/// representative per cluster ([`subset3d_cluster::SubsetterFit::check`]).
///
/// # Errors
///
/// Returns the backend name plus the first contract violation.
pub fn check_backend_partition(
    backend: &dyn SubsetterBackend,
    points: &[Vec<f64>],
) -> Result<(), String> {
    let fit = backend.fit(points);
    fit.check(points.len())
        .map_err(|e| format!("backend {}: {e}", backend.name()))
}

/// **Backend permutation invariance**: a backend's partition depends only
/// on the multiset of feature vectors, never on submission order. Fits the
/// original and a permuted copy and checks that the label sequences
/// correspond under the permutation and that the representative *vectors*
/// (not indices) are identical.
///
/// `permutation` maps new position → original point index.
///
/// # Errors
///
/// Returns the backend name plus the divergence, or a description of a
/// malformed `permutation`.
pub fn check_backend_permutation(
    backend: &dyn SubsetterBackend,
    points: &[Vec<f64>],
    permutation: &[usize],
) -> Result<(), String> {
    if permutation.len() != points.len() {
        return Err(format!(
            "permutation length {} != point count {}",
            permutation.len(),
            points.len()
        ));
    }
    let mut seen = vec![false; points.len()];
    for &p in permutation {
        if p >= points.len() || seen[p] {
            return Err(format!("not a permutation: index {p}"));
        }
        seen[p] = true;
    }
    let shuffled: Vec<Vec<f64>> = permutation.iter().map(|&i| points[i].clone()).collect();
    let a = backend.fit(points);
    let b = backend.fit(&shuffled);
    // Point permutation[i] of the original is point i of the shuffle, so
    // under canonical labels the sequences must correspond exactly.
    let relabeled: Vec<usize> = permutation
        .iter()
        .map(|&i| a.clustering.assignments()[i])
        .collect();
    if relabeled != b.clustering.assignments() {
        return Err(format!(
            "backend {}: assignments depend on point order",
            backend.name()
        ));
    }
    let reps_a: Vec<&Vec<f64>> = a.representatives.iter().map(|&r| &points[r]).collect();
    let reps_b: Vec<&Vec<f64>> = b.representatives.iter().map(|&r| &shuffled[r]).collect();
    if reps_a != reps_b {
        return Err(format!(
            "backend {}: representative vectors depend on point order",
            backend.name()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use subset3d_cluster::ThresholdSubsetter;
    use subset3d_core::{cluster_frame, SubsetConfig};
    use subset3d_trace::gen::GameProfile;

    fn workload() -> Workload {
        GameProfile::racing("meta")
            .frames(3)
            .draws_per_frame(30)
            .build(21)
            .generate()
    }

    #[test]
    fn all_checkers_pass_on_a_real_workload() {
        let w = workload();
        let config = ArchConfig::baseline();
        check_frequency_monotone(&w, &config, &[500.0, 800.0, 1100.0]).unwrap();
        check_cache_modes_identical(&w, &config).unwrap();

        let frame = &w.frames()[0];
        let n = frame.draw_count();
        let reversed: Vec<usize> = (0..n).rev().collect();
        check_draw_permutation(frame, &w, &config, &reversed).unwrap();

        let clustering = cluster_frame(frame, &w, &SubsetConfig::default());
        let sim = Simulator::new(config);
        let cost = sim.simulate_frame(frame, &w).unwrap();
        let k = clustering.clusters.len();
        let rotate: Vec<usize> = (0..k).map(|i| (i + 1) % k).collect();
        check_cluster_relabeling(&clustering, &cost, &rotate).unwrap();
    }

    #[test]
    fn backend_checkers_pass_and_reject() {
        let points: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i as f64 * 0.9).sin() * 2.0, i as f64 % 3.0])
            .collect();
        let backend = ThresholdSubsetter::new(0.7);
        check_backend_partition(&backend, &points).unwrap();
        let reversed: Vec<usize> = (0..points.len()).rev().collect();
        check_backend_permutation(&backend, &points, &reversed).unwrap();
        let bad = vec![0; points.len()];
        let err = check_backend_permutation(&backend, &points, &bad).unwrap_err();
        assert!(err.contains("not a permutation"), "{err}");
    }

    #[test]
    fn malformed_permutation_is_rejected() {
        let w = workload();
        let frame = &w.frames()[0];
        let bad = vec![0; frame.draw_count()];
        let err = check_draw_permutation(frame, &w, &ArchConfig::baseline(), &bad).unwrap_err();
        assert!(err.contains("not a permutation"), "{err}");
    }
}
