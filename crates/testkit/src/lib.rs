//! Correctness tooling for the subset3d workspace.
//!
//! Three independent layers, each attacking a different failure class of
//! the optimized pipeline (see `DESIGN.md`, *Correctness tooling*):
//!
//! 1. **Differential oracle** ([`oracle`]) — runs the deliberately naive
//!    reference model in [`subset3d_gpusim::reference`] side by side with
//!    the memoized, parallel [`subset3d_gpusim::Simulator`] and compares
//!    every `f64` **bitwise**. Catches stale cache entries, key
//!    collisions, non-deterministic parallel reductions and accidental
//!    formula edits at the first differing bit.
//! 2. **Metamorphic invariants** ([`metamorphic`]) — reusable checkers for
//!    properties the model must satisfy for *any* workload (frequency
//!    monotonicity, cache-mode transparency, permutation and relabeling
//!    invariance). Returning `Result<(), String>`, they slot into both
//!    plain `#[test]`s and `proptest!` properties.
//! 3. **Golden snapshots** ([`golden`]) — end-to-end pipeline runs
//!    serialised to committed JSON under `tests/golden/`; any byte of
//!    drift names the first divergent field. Regenerate deliberately with
//!    `UPDATE_GOLDEN=1`.
//! 4. **Streaming oracle** ([`streaming`]) — drains corpora through
//!    `subset3d-serve` sessions and holds the result to the batch
//!    pipeline's output: bit-identical while the stream fits the session
//!    reservoir (at any chunk size and thread count), bounded error-bound
//!    drift once the reservoir overflows.
//!
//! [`corpus`] supplies the fixed-seed workloads every layer runs against.

#![warn(missing_docs)]

pub mod corpus;
pub mod golden;
pub mod metamorphic;
pub mod oracle;
pub mod streaming;
