//! The fixed-seed workload corpus the harness runs against.
//!
//! Seeds and shapes are deliberately frozen: the oracle matrix, the golden
//! snapshots and the tier-1 `oracle_divergence` test all assume these
//! exact workloads. Changing a seed here invalidates the committed golden
//! files (regenerate with `UPDATE_GOLDEN=1`).

use subset3d_trace::gen::GameProfile;
use subset3d_trace::Workload;

/// Frames per oracle-corpus workload.
pub const ORACLE_FRAMES: usize = 8;

/// Draws per frame in the oracle corpus. The generator treats this as a
/// target that phase load curves modulate, so the realised count varies by
/// profile; 200 keeps every profile past the simulator's 1000-draw
/// threshold (racing, the lightest, lands at ~1348), so the parallel
/// fan-out path is exercised whenever the global pool has two or more
/// threads.
pub const ORACLE_DRAWS_PER_FRAME: usize = 200;

/// Frames per golden-snapshot workload (smaller: the whole pipeline runs,
/// not just the simulator).
pub const GOLDEN_FRAMES: usize = 12;

/// Draws per frame in the golden-snapshot corpus.
pub const GOLDEN_DRAWS_PER_FRAME: usize = 40;

/// The three game profiles with their frozen corpus seeds.
pub const PROFILES: [(&str, u64); 3] = [("shooter", 11), ("rts", 13), ("racing", 17)];

fn build(profile: &str, seed: u64, frames: usize, draws: usize) -> Workload {
    let builder = match profile {
        "shooter" => GameProfile::shooter(profile),
        "rts" => GameProfile::rts(profile),
        "racing" => GameProfile::racing(profile),
        other => panic!("unknown profile {other:?}"),
    };
    builder
        .frames(frames)
        .draws_per_frame(draws)
        .build(seed)
        .generate()
}

/// The oracle corpus: one 1200-draw workload per game profile.
pub fn oracle_corpus() -> Vec<(&'static str, Workload)> {
    PROFILES
        .iter()
        .map(|&(name, seed)| {
            (
                name,
                build(name, seed, ORACLE_FRAMES, ORACLE_DRAWS_PER_FRAME),
            )
        })
        .collect()
}

/// The golden-snapshot corpus: one small workload per game profile, sized
/// for full pipeline runs.
pub fn golden_corpus() -> Vec<(&'static str, Workload)> {
    PROFILES
        .iter()
        .map(|&(name, seed)| {
            (
                name,
                build(name, seed, GOLDEN_FRAMES, GOLDEN_DRAWS_PER_FRAME),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_sized_for_parallel_path() {
        let a = oracle_corpus();
        let b = oracle_corpus();
        assert_eq!(a.len(), 3);
        for ((name_a, wa), (name_b, wb)) in a.iter().zip(&b) {
            assert_eq!(name_a, name_b);
            assert_eq!(wa, wb, "corpus generation must be deterministic");
            assert!(
                wa.total_draws() >= 1000,
                "{name_a} must cross the parallel threshold"
            );
        }
    }

    #[test]
    fn golden_corpus_covers_all_profiles() {
        let names: Vec<_> = golden_corpus().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["shooter", "rts", "racing"]);
    }
}
