//! The differential oracle: naive reference vs optimized path, bitwise.
//!
//! [`run_oracle`] simulates a workload through the production
//! [`Simulator`] — memo cache, frame digests, thread pool and all — and
//! through the orchestration-free reference model in
//! [`subset3d_gpusim::reference`], then compares every field. Floats are
//! compared **by bit pattern** ([`f64::to_bits`]): the reference mirrors
//! the production arithmetic expression for expression, so IEEE 754
//! guarantees equality unless the optimized layer changed *what* was
//! computed — exactly the bug class under test.
//!
//! Energy, the frequency-scaling improvement series and the per-frame
//! prediction-error computation are covered by the same treatment.

use subset3d_core::{cluster_frame, predict_frame, FramePrediction, SubsetConfig};
use subset3d_gpusim::reference;
use subset3d_gpusim::{ArchConfig, CacheMode, PowerModel, SimError, Simulator, WorkloadCost};
use subset3d_trace::Workload;

/// Core clocks (MHz) swept by the oracle's improvement-series check.
pub const ORACLE_SWEEP_MHZ: [f64; 3] = [600.0, 900.0, 1200.0];

/// One field-level disagreement between the reference and optimized paths.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Which run the disagreement came from, e.g. `"shooter/On/8t"`.
    pub context: String,
    /// Where in the output it sits, e.g. `"frame 3, draw 17"`.
    pub location: String,
    /// The differing field, e.g. `"time_ns"`.
    pub field: String,
    /// The reference value (floats rendered with their bit pattern).
    pub reference: String,
    /// The optimized value.
    pub optimized: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} :: {}: reference {} != optimized {}",
            self.context, self.location, self.field, self.reference, self.optimized
        )
    }
}

/// Everything one oracle run checked and found.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleReport {
    /// Field-level disagreements, in discovery order.
    pub divergences: Vec<Divergence>,
    /// Number of draw costs compared.
    pub draws_compared: usize,
}

impl OracleReport {
    /// Whether the optimized path agreed with the reference on every bit.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Panics with a readable report when any divergence was found.
    ///
    /// # Panics
    ///
    /// Panics if [`OracleReport::is_clean`] is false.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "differential oracle found {} divergence(s); first: {}",
            self.divergences.len(),
            self.divergences[0]
        );
    }
}

fn float_repr(v: f64) -> String {
    format!("{v:e} (bits {:#018x})", v.to_bits())
}

struct Comparator {
    context: String,
    out: Vec<Divergence>,
}

impl Comparator {
    fn new(context: &str) -> Self {
        Comparator {
            context: context.to_string(),
            out: Vec::new(),
        }
    }

    fn float(&mut self, location: &str, field: &str, reference: f64, optimized: f64) {
        if reference.to_bits() != optimized.to_bits() {
            self.out.push(Divergence {
                context: self.context.clone(),
                location: location.to_string(),
                field: field.to_string(),
                reference: float_repr(reference),
                optimized: float_repr(optimized),
            });
        }
    }

    fn other(&mut self, location: &str, field: &str, reference: String, optimized: String) {
        if reference != optimized {
            self.out.push(Divergence {
                context: self.context.clone(),
                location: location.to_string(),
                field: field.to_string(),
                reference,
                optimized,
            });
        }
    }
}

/// Compares two workload costs field by field, bitwise on every float.
pub fn compare_costs(
    context: &str,
    reference: &WorkloadCost,
    optimized: &WorkloadCost,
) -> Vec<Divergence> {
    let mut cmp = Comparator::new(context);
    cmp.other(
        "workload",
        "frame count",
        reference.frames.len().to_string(),
        optimized.frames.len().to_string(),
    );
    cmp.float(
        "workload",
        "total_ns",
        reference.total_ns,
        optimized.total_ns,
    );
    for (fi, (rf, of)) in reference.frames.iter().zip(&optimized.frames).enumerate() {
        let frame_loc = format!("frame {fi}");
        cmp.other(
            &frame_loc,
            "draw count",
            rf.draws.len().to_string(),
            of.draws.len().to_string(),
        );
        cmp.float(&frame_loc, "total_ns", rf.total_ns, of.total_ns);
        for (di, (rd, od)) in rf.draws.iter().zip(&of.draws).enumerate() {
            let loc = format!("frame {fi}, draw {di}");
            cmp.float(
                &loc,
                "geometry_cycles",
                rd.geometry_cycles,
                od.geometry_cycles,
            );
            cmp.float(&loc, "raster_cycles", rd.raster_cycles, od.raster_cycles);
            cmp.float(&loc, "pixel_cycles", rd.pixel_cycles, od.pixel_cycles);
            cmp.float(&loc, "texture_cycles", rd.texture_cycles, od.texture_cycles);
            cmp.float(&loc, "rop_cycles", rd.rop_cycles, od.rop_cycles);
            cmp.float(
                &loc,
                "overhead_cycles",
                rd.overhead_cycles,
                od.overhead_cycles,
            );
            cmp.float(&loc, "mem_bytes", rd.mem_bytes, od.mem_bytes);
            cmp.float(&loc, "time_ns", rd.time_ns, od.time_ns);
            cmp.other(
                &loc,
                "bottleneck",
                format!("{:?}", rd.bottleneck),
                format!("{:?}", od.bottleneck),
            );
        }
    }
    cmp.out
}

/// Naive transcription of [`subset3d_core::predict_frame`]: indexed loops,
/// no iterator adapters, same summation order (so bit-identical output is
/// expected, not approximate).
pub fn reference_predict_frame(
    clustering: &subset3d_core::FrameClustering,
    cost: &subset3d_gpusim::FrameCost,
) -> FramePrediction {
    assert_eq!(clustering.draw_count, cost.draws.len());
    let actual_ns = cost.total_ns;
    let mut predicted_ns = 0.0;
    let mut cluster_errors = Vec::with_capacity(clustering.clusters.len());
    for cluster in &clustering.clusters {
        let rep_cost = cost.draws[cluster.representative].time_ns;
        let cluster_predicted = rep_cost * cluster.len() as f64;
        let mut cluster_actual = 0.0;
        for &m in &cluster.members {
            cluster_actual += cost.draws[m].time_ns;
        }
        predicted_ns += cluster_predicted;
        cluster_errors.push(if cluster_actual > 0.0 {
            (cluster_predicted - cluster_actual).abs() / cluster_actual
        } else {
            0.0
        });
    }
    FramePrediction {
        actual_ns,
        predicted_ns,
        cluster_errors,
    }
}

/// Runs the full differential oracle for one workload under one simulator
/// configuration: costs, energy, improvement series and per-frame
/// prediction errors.
///
/// The simulator's cache mode and the ambient thread count are whatever
/// the caller set — the whole point is comparing those configurations
/// against the cache-free single-threaded reference.
///
/// # Errors
///
/// Propagates [`SimError`] when either path rejects the workload; a
/// *divergence in error behaviour* (one path fails, the other succeeds)
/// is reported as a [`Divergence`] instead.
pub fn run_oracle(
    context: &str,
    workload: &Workload,
    sim: &Simulator,
) -> Result<OracleReport, SimError> {
    run_oracle_with_config(context, workload, sim, &SubsetConfig::default())
}

/// [`run_oracle`] with an explicit pipeline configuration for the
/// prediction-layer check, so the oracle can hold *every* clustering
/// backend — not just the default threshold method — to the bitwise
/// contract.
///
/// # Errors
///
/// Propagates [`SimError`] as [`run_oracle`] does.
pub fn run_oracle_with_config(
    context: &str,
    workload: &Workload,
    sim: &Simulator,
    subset_config: &SubsetConfig,
) -> Result<OracleReport, SimError> {
    let config = sim.config().clone();
    let reference_cost = reference::reference_workload_cost(workload, &config)?;
    let optimized_cost = sim.simulate_workload(workload)?;
    let mut divergences = compare_costs(context, &reference_cost, &optimized_cost);
    let draws_compared = reference_cost.total_draws();

    // Energy: flat reference double-loop vs the production power model.
    let model = PowerModel::default_for(&config);
    let reference_energy = reference::reference_workload_energy(&reference_cost, &model, &config);
    let optimized_energy = model.workload_energy(&optimized_cost, &config);
    let mut cmp = Comparator::new(context);
    cmp.float(
        "workload energy",
        "dynamic_nj",
        reference_energy.dynamic_nj,
        optimized_energy.dynamic_nj,
    );
    cmp.float(
        "workload energy",
        "static_nj",
        reference_energy.static_nj,
        optimized_energy.static_nj,
    );
    cmp.float(
        "workload energy",
        "memory_nj",
        reference_energy.memory_nj,
        optimized_energy.memory_nj,
    );

    // Frequency scaling: both paths sweep the same clocks; the improvement
    // series must agree bit for bit.
    let reference_series =
        reference::reference_improvement_series(workload, &config, &ORACLE_SWEEP_MHZ)?;
    let mut optimized_times = Vec::with_capacity(ORACLE_SWEEP_MHZ.len());
    for &mhz in &ORACLE_SWEEP_MHZ {
        let swept = Simulator::new(config.with_core_clock(mhz));
        swept.set_cache_mode(sim.cache_mode());
        swept.set_batch_width(sim.batch_width());
        optimized_times.push(swept.simulate_workload(workload)?.total_ns);
    }
    let optimized_series = subset3d_gpusim::FrequencySweep::improvement_series(&optimized_times);
    for (i, (r, o)) in reference_series.iter().zip(&optimized_series).enumerate() {
        cmp.float(
            &format!("improvement series, point {i}"),
            "improvement",
            *r,
            *o,
        );
    }

    // Prediction error: the clustering evaluation arithmetic, naive vs
    // production, on the optimized costs (the cost layer was compared
    // above; this isolates the prediction layer).
    for (fi, frame) in workload.frames().iter().enumerate() {
        let clustering = cluster_frame(frame, workload, subset_config);
        let cost = &optimized_cost.frames[fi];
        let reference_pred = reference_predict_frame(&clustering, cost);
        let optimized_pred = predict_frame(&clustering, cost);
        let loc = format!("frame {fi} prediction");
        cmp.float(
            &loc,
            "actual_ns",
            reference_pred.actual_ns,
            optimized_pred.actual_ns,
        );
        cmp.float(
            &loc,
            "predicted_ns",
            reference_pred.predicted_ns,
            optimized_pred.predicted_ns,
        );
        cmp.float(
            &loc,
            "error",
            reference_pred.error(),
            optimized_pred.error(),
        );
        for (ci, (r, o)) in reference_pred
            .cluster_errors
            .iter()
            .zip(&optimized_pred.cluster_errors)
            .enumerate()
        {
            cmp.float(&loc, &format!("cluster_errors[{ci}]"), *r, *o);
        }
    }

    divergences.extend(cmp.out);
    Ok(OracleReport {
        divergences,
        draws_compared,
    })
}

/// Runs [`run_oracle`] twice for every cache mode — the second pass hits
/// whatever the first pass cached — and returns all divergences found.
///
/// # Errors
///
/// Propagates [`SimError`] from any pass.
pub fn run_oracle_all_modes(
    label: &str,
    workload: &Workload,
    config: &ArchConfig,
) -> Result<OracleReport, SimError> {
    run_oracle_all_modes_with_config(label, workload, config, &SubsetConfig::default())
}

/// [`run_oracle_all_modes`] with an explicit pipeline configuration, so
/// the cache-mode matrix can be swept once per clustering backend.
///
/// # Errors
///
/// Propagates [`SimError`] from any pass.
pub fn run_oracle_all_modes_with_config(
    label: &str,
    workload: &Workload,
    config: &ArchConfig,
    subset_config: &SubsetConfig,
) -> Result<OracleReport, SimError> {
    let threads = subset3d_exec::thread_count();
    let mut divergences = Vec::new();
    let mut draws_compared = 0;
    for mode in [CacheMode::Auto, CacheMode::On, CacheMode::Off] {
        let sim = Simulator::new(config.clone());
        sim.set_cache_mode(mode);
        for pass in 0..2 {
            let context = format!("{label}/{mode:?}/{threads}t/pass{pass}");
            let report = run_oracle_with_config(&context, workload, &sim, subset_config)?;
            divergences.extend(report.divergences);
            draws_compared += report.draws_compared;
        }
    }
    Ok(OracleReport {
        divergences,
        draws_compared,
    })
}

/// Runs [`run_oracle`] at every combination of cache mode and batch
/// width, twice each. Batching must be invisible: whether a frame is
/// executed draw by draw (`width 1`), in the default 64-draw batches, or
/// in 128-draw batches (each leaving a different ragged tail), every
/// cost bit must match the struct-at-a-time reference.
///
/// # Errors
///
/// Propagates [`SimError`] from any pass.
pub fn run_oracle_batch_widths(
    label: &str,
    workload: &Workload,
    config: &ArchConfig,
    widths: &[usize],
) -> Result<OracleReport, SimError> {
    let threads = subset3d_exec::thread_count();
    let mut divergences = Vec::new();
    let mut draws_compared = 0;
    for &width in widths {
        for mode in [CacheMode::Auto, CacheMode::On, CacheMode::Off] {
            let sim = Simulator::new(config.clone());
            sim.set_cache_mode(mode);
            sim.set_batch_width(width);
            for pass in 0..2 {
                let context = format!("{label}/{mode:?}/w{width}/{threads}t/pass{pass}");
                let report = run_oracle(&context, workload, &sim)?;
                divergences.extend(report.divergences);
                draws_compared += report.draws_compared;
            }
        }
    }
    Ok(OracleReport {
        divergences,
        draws_compared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use subset3d_trace::gen::GameProfile;

    #[test]
    fn oracle_clean_on_small_workload() {
        let w = GameProfile::shooter("oracle-smoke")
            .frames(2)
            .draws_per_frame(25)
            .build(3)
            .generate();
        let report = run_oracle_all_modes("smoke", &w, &ArchConfig::baseline()).unwrap();
        assert!(report.draws_compared > 0);
        report.assert_clean();
    }

    #[test]
    fn compare_costs_flags_a_flipped_bit() {
        let w = GameProfile::rts("oracle-flip")
            .frames(1)
            .draws_per_frame(10)
            .build(4)
            .generate();
        let config = ArchConfig::baseline();
        let reference = reference::reference_workload_cost(&w, &config).unwrap();
        let mut tampered = reference.clone();
        let t = &mut tampered.frames[0].draws[3].time_ns;
        *t = f64::from_bits(t.to_bits() ^ 1);
        let divergences = compare_costs("flip", &reference, &tampered);
        assert_eq!(divergences.len(), 1);
        assert_eq!(divergences[0].field, "time_ns");
        assert_eq!(divergences[0].location, "frame 0, draw 3");
    }
}
