//! The streaming-vs-batch differential oracle.
//!
//! The serve crate promises that draining a corpus through a streaming
//! session converges to the batch pipeline's fit (see the convergence
//! contract on [`subset3d_serve`]):
//!
//! * **Bit-identical** while the stream fits in the session reservoir: the
//!   drained fit equals [`Subsetter::global_fit`], the per-frame
//!   clusterings equal the batch outcome's, and the running mean
//!   prediction error matches [`WorkloadEvaluation::mean_prediction_error`]
//!   bit for bit — at any chunk size.
//! * **Bounded drift** otherwise: the fit partitions the reservoir sample
//!   and the RLS error bound stays within [`ServeConfig::drift_bound`] of
//!   the batch mean error.
//!
//! [`run_streaming_oracle`] enforces the first half, [`run_drift_check`]
//! the second; both return `Result<(), String>` so they slot into plain
//! `#[test]`s and `proptest!` properties alike (the [`metamorphic`]
//! convention).
//!
//! [`metamorphic`]: crate::metamorphic
//! [`WorkloadEvaluation::mean_prediction_error`]:
//!     subset3d_core::WorkloadEvaluation::mean_prediction_error

use subset3d_core::{SubsetConfig, Subsetter};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_serve::{replay, ReplayOptions, ServeConfig, SessionReport};
use subset3d_trace::Workload;

/// Chunk sizes the oracle matrix sweeps. Sizes at or above the corpus
/// length collapse to a single chunk — the chunk-equals-corpus case.
pub const ORACLE_CHUNK_FRAMES: [usize; 4] = [1, 16, 64, usize::MAX];

/// Thread counts the oracle matrix replays under.
pub const ORACLE_THREADS: [usize; 3] = [1, 2, 8];

/// Sessions per replay: enough that the batched ingest path actually
/// fans out on the pool at the higher [`ORACLE_THREADS`] entries.
pub const ORACLE_SESSIONS: usize = 4;

fn serve_config(subset: &SubsetConfig, reservoir_capacity: usize) -> ServeConfig {
    ServeConfig {
        subset: subset.clone(),
        arch: ArchConfig::baseline(),
        reservoir_capacity,
        retain_frame_fits: true,
        ..ServeConfig::default()
    }
}

fn bits(v: f64) -> String {
    format!("{v:e} (bits {:#018x})", v.to_bits())
}

fn stream(
    workload: &Workload,
    config: &ServeConfig,
    chunk_frames: usize,
    sessions: usize,
) -> Result<Vec<SessionReport>, String> {
    let outcome = replay(
        workload,
        config,
        &ReplayOptions {
            sessions,
            chunk_frames,
            ..Default::default()
        },
    )
    .map_err(|e| format!("replay failed: {e}"))?;
    Ok(outcome.reports)
}

/// Runs the bit-identical half of the oracle: every session that drained
/// `workload` (reservoir sized to hold it all) must reproduce the batch
/// pipeline's per-frame clusterings, global fit and mean prediction error
/// exactly, regardless of `chunk_frames` or the ambient thread count.
///
/// # Errors
///
/// Returns a description of the first divergence found.
pub fn run_streaming_oracle(
    context: &str,
    workload: &Workload,
    subset_config: &SubsetConfig,
    chunk_frames: usize,
) -> Result<(), String> {
    let frames = workload.frames().len();
    let config = serve_config(subset_config, frames.max(1));
    let reports = stream(workload, &config, chunk_frames, ORACLE_SESSIONS)?;

    // Batch references: the full pipeline for per-frame state, the
    // frame-level global fit for the partition.
    let subsetter = Subsetter::new(subset_config.clone());
    let sim = Simulator::new(ArchConfig::baseline());
    let outcome = subsetter
        .run(workload, &sim)
        .map_err(|e| format!("[{context}] batch pipeline failed: {e}"))?;
    let batch_fit = subsetter
        .global_fit(workload)
        .map_err(|e| format!("[{context}] batch global fit failed: {e}"))?;
    let batch_error = outcome.evaluation.mean_prediction_error();

    for (si, report) in reports.iter().enumerate() {
        let ctx = format!("{context}/session {si}/chunk {chunk_frames}");
        if report.frames_seen != frames {
            return Err(format!(
                "[{ctx}] drained {} frames, corpus has {frames}",
                report.frames_seen
            ));
        }
        if report.fit != batch_fit {
            return Err(format!(
                "[{ctx}] drained fit diverges from Subsetter::global_fit: \
                 {} vs {} clusters, representatives {:?} vs {:?}",
                report.fit.clustering.len(),
                batch_fit.clustering.len(),
                report.fit.representatives,
                batch_fit.representatives
            ));
        }
        if report.frame_fits != outcome.clusterings {
            let first = report
                .frame_fits
                .iter()
                .zip(&outcome.clusterings)
                .position(|(a, b)| a != b);
            return Err(format!(
                "[{ctx}] per-frame clusterings diverge from the batch \
                 pipeline (first at frame {first:?})"
            ));
        }
        let streamed_error = report.final_update.mean_prediction_error;
        if streamed_error.to_bits() != batch_error.to_bits() {
            return Err(format!(
                "[{ctx}] mean prediction error diverges: streamed {} vs batch {}",
                bits(streamed_error),
                bits(batch_error)
            ));
        }
        let drift = (report.final_update.error_bound - batch_error).abs();
        if drift > config.drift_bound {
            return Err(format!(
                "[{ctx}] error bound {} drifted {drift:e} from batch mean \
                 error {} (bound {})",
                bits(report.final_update.error_bound),
                bits(batch_error),
                config.drift_bound
            ));
        }
        // Sessions fed identical streams may never disagree.
        if report != &reports[0] {
            return Err(format!("[{ctx}] sessions disagree on identical streams"));
        }
    }
    Ok(())
}

/// Runs the bounded-drift half of the oracle: with a reservoir smaller
/// than the corpus the drained fit must still be a valid partition of
/// exactly `capacity` retained frames, the (reservoir-independent)
/// running error mean must still match batch bit for bit, and the error
/// bound must stay within the configured drift bound.
///
/// # Errors
///
/// Returns a description of the first violated bound.
pub fn run_drift_check(
    context: &str,
    workload: &Workload,
    subset_config: &SubsetConfig,
    chunk_frames: usize,
    capacity: usize,
) -> Result<(), String> {
    assert!(
        capacity < workload.frames().len(),
        "drift check needs an overflowing reservoir"
    );
    let config = serve_config(subset_config, capacity);
    let reports = stream(workload, &config, chunk_frames, 1)?;
    let report = &reports[0];
    let ctx = format!("{context}/chunk {chunk_frames}/capacity {capacity}");

    let occupancy = report.final_update.reservoir_occupancy;
    if occupancy != capacity {
        return Err(format!(
            "[{ctx}] overflowed reservoir holds {occupancy} frames, \
             expected exactly {capacity}"
        ));
    }
    if let Err(e) = report.fit.check(occupancy) {
        return Err(format!("[{ctx}] drained fit violates the contract: {e}"));
    }

    let subsetter = Subsetter::new(subset_config.clone());
    let sim = Simulator::new(ArchConfig::baseline());
    let outcome = subsetter
        .run(workload, &sim)
        .map_err(|e| format!("[{ctx}] batch pipeline failed: {e}"))?;
    let batch_error = outcome.evaluation.mean_prediction_error();
    let streamed_error = report.final_update.mean_prediction_error;
    if streamed_error.to_bits() != batch_error.to_bits() {
        return Err(format!(
            "[{ctx}] running error mean must not depend on the reservoir: \
             streamed {} vs batch {}",
            bits(streamed_error),
            bits(batch_error)
        ));
    }
    let drift = (report.final_update.error_bound - batch_error).abs();
    if drift > config.drift_bound {
        return Err(format!(
            "[{ctx}] error bound {} drifted {drift:e} from batch mean error \
             {} (bound {})",
            bits(report.final_update.error_bound),
            bits(batch_error),
            config.drift_bound
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use subset3d_trace::gen::GameProfile;

    fn workload() -> Workload {
        GameProfile::shooter("streaming-smoke")
            .frames(6)
            .draws_per_frame(30)
            .build(2)
            .generate()
    }

    #[test]
    fn oracle_clean_on_small_workload() {
        let w = workload();
        for chunk in [1, 4, usize::MAX] {
            run_streaming_oracle("smoke", &w, &SubsetConfig::default(), chunk).unwrap();
        }
    }

    #[test]
    fn drift_check_holds_with_tiny_reservoir() {
        let w = workload();
        run_drift_check("smoke", &w, &SubsetConfig::default(), 2, 3).unwrap();
    }

    #[test]
    fn oracle_reports_a_tampered_error_mean() {
        // The oracle must actually be able to fail: feed it a workload
        // whose batch run it computes itself, but lie about the corpus by
        // streaming a *different* workload.
        let w = workload();
        let other = GameProfile::rts("streaming-tamper")
            .frames(6)
            .draws_per_frame(30)
            .build(9)
            .generate();
        let config = serve_config(&SubsetConfig::default(), 6);
        let reports = stream(&other, &config, 2, 1).unwrap();
        let subsetter = Subsetter::new(SubsetConfig::default());
        let sim = Simulator::new(ArchConfig::baseline());
        let outcome = subsetter.run(&w, &sim).unwrap();
        let batch_error = outcome.evaluation.mean_prediction_error();
        assert_ne!(
            reports[0].final_update.mean_prediction_error.to_bits(),
            batch_error.to_bits(),
            "distinct corpora must not produce identical error means"
        );
    }
}
