//! The golden-snapshot harness.
//!
//! A golden test serialises a deterministic pipeline result to JSON and
//! compares it byte-for-byte against a file committed under
//! `tests/golden/` at the workspace root. On mismatch the failure names
//! the **first divergent field** (by JSON path), not just "files differ".
//!
//! To re-bless after an intentional behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p subset3d-testkit --test golden_snapshots
//! git diff tests/golden/   # review every changed field before committing
//! ```
//!
//! Regeneration is bit-identical run to run — the snapshots contain only
//! deterministic data — so a second `UPDATE_GOLDEN=1` run leaves the tree
//! clean.

use serde_json::Value;
use std::path::{Path, PathBuf};

/// Environment variable that switches golden checks to regeneration mode.
pub const UPDATE_GOLDEN_ENV: &str = "UPDATE_GOLDEN";

/// Outcome of a golden comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum GoldenOutcome {
    /// The snapshot matched the committed golden byte for byte.
    Match,
    /// `UPDATE_GOLDEN=1`: the golden file was (re)written.
    Updated,
}

/// Walks up from the current directory to the workspace root (the first
/// ancestor whose `Cargo.toml` declares `[workspace]`).
///
/// # Errors
///
/// Returns a message when no ancestor qualifies (the harness is running
/// outside the repository).
pub fn workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
    }
    Err(format!(
        "no workspace root above {}: golden tests must run inside the repository",
        start.display()
    ))
}

/// The committed golden directory, `tests/golden/` under the workspace
/// root.
///
/// # Errors
///
/// Propagates [`workspace_root`] failure.
pub fn golden_dir() -> Result<PathBuf, String> {
    Ok(workspace_root()?.join("tests").join("golden"))
}

/// Renders a JSON path segment list as `root.a[3].b` for diff messages.
fn render_path(path: &[String]) -> String {
    let mut out = String::from("root");
    for seg in path {
        out.push_str(seg);
    }
    out
}

fn value_repr(v: &Value) -> String {
    match v {
        Value::Float(f) => format!("{f:e} (bits {:#018x})", f.to_bits()),
        other => serde_json::to_string(other).unwrap_or_else(|_| format!("{other:?}")),
    }
}

/// Recursively finds the first structural difference between two JSON
/// values, returning `(path, expected, actual)` rendered for humans.
fn first_divergence(
    path: &mut Vec<String>,
    expected: &Value,
    actual: &Value,
) -> Option<(String, String, String)> {
    match (expected, actual) {
        (Value::Array(e), Value::Array(a)) => {
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                path.push(format!("[{i}]"));
                if let Some(d) = first_divergence(path, ev, av) {
                    return Some(d);
                }
                path.pop();
            }
            if e.len() != a.len() {
                return Some((
                    render_path(path),
                    format!("array of {}", e.len()),
                    format!("array of {}", a.len()),
                ));
            }
            None
        }
        (Value::Object(e), Value::Object(a)) => {
            for (i, ((ek, ev), (ak, av))) in e.iter().zip(a.iter()).enumerate() {
                if ek != ak {
                    path.push(format!(".{{field {i}}}"));
                    return Some((
                        render_path(path),
                        format!("field {ek:?}"),
                        format!("field {ak:?}"),
                    ));
                }
                path.push(format!(".{ek}"));
                if let Some(d) = first_divergence(path, ev, av) {
                    return Some(d);
                }
                path.pop();
            }
            if e.len() != a.len() {
                return Some((
                    render_path(path),
                    format!("object of {}", e.len()),
                    format!("object of {}", a.len()),
                ));
            }
            None
        }
        (e, a) if e == a => None,
        (e, a) => Some((render_path(path), value_repr(e), value_repr(a))),
    }
}

/// Produces the human-readable diff between two JSON documents: the first
/// divergent field by path, or `None` when they are structurally equal.
///
/// # Errors
///
/// Returns a message when either document fails to parse.
pub fn diff_json(expected: &str, actual: &str) -> Result<Option<String>, String> {
    let e: Value =
        serde_json::parse_value(expected).map_err(|err| format!("golden unparsable: {err}"))?;
    let a: Value =
        serde_json::parse_value(actual).map_err(|err| format!("snapshot unparsable: {err}"))?;
    Ok(
        first_divergence(&mut Vec::new(), &e, &a).map(|(path, exp, act)| {
            format!("first divergent field at {path}: golden {exp}, run produced {act}")
        }),
    )
}

/// Checks `snapshot_json` against the committed golden `<name>.json`.
///
/// With `UPDATE_GOLDEN=1` in the environment the golden file is rewritten
/// instead and [`GoldenOutcome::Updated`] returned.
///
/// # Errors
///
/// Returns a diff report naming the first divergent field on mismatch, an
/// instruction to regenerate when the golden file is missing, or an I/O
/// message.
pub fn check_golden(name: &str, snapshot_json: &str) -> Result<GoldenOutcome, String> {
    let dir = golden_dir()?;
    let path = dir.join(format!("{name}.json"));
    if std::env::var(UPDATE_GOLDEN_ENV).map(|v| v == "1") == Ok(true) {
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        write_if_changed(&path, snapshot_json)?;
        return Ok(GoldenOutcome::Updated);
    }
    let golden = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "missing golden {}: {e}\nrun `UPDATE_GOLDEN=1 cargo test -p subset3d-testkit \
             --test golden_snapshots` and commit the result",
            path.display()
        )
    })?;
    if golden == snapshot_json {
        return Ok(GoldenOutcome::Match);
    }
    match diff_json(&golden, snapshot_json)? {
        Some(diff) => Err(format!("golden {name} diverged: {diff}")),
        None => Err(format!(
            "golden {name} diverged in formatting only (values equal); \
             regenerate with UPDATE_GOLDEN=1"
        )),
    }
}

/// Writes only when contents differ, keeping mtimes (and `git status`)
/// quiet on no-op regeneration.
fn write_if_changed(path: &Path, contents: &str) -> Result<(), String> {
    if matches!(std::fs::read_to_string(path), Ok(old) if old == contents) {
        return Ok(());
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_and_has_golden_parent() {
        let root = workspace_root().unwrap();
        assert!(root.join("Cargo.toml").exists());
        assert!(golden_dir().unwrap().starts_with(&root));
    }

    #[test]
    fn diff_names_first_divergent_field() {
        let golden = r#"{"a": 1, "b": {"c": [1.0, 2.0]}}"#;
        let run = r#"{"a": 1, "b": {"c": [1.0, 2.5]}}"#;
        let diff = diff_json(golden, run).unwrap().unwrap();
        assert!(diff.contains("root.b.c[1]"), "{diff}");
        assert!(diff_json(golden, golden).unwrap().is_none());
    }

    #[test]
    fn diff_reports_length_and_key_changes() {
        let diff = diff_json(r#"[1, 2]"#, r#"[1, 2, 3]"#).unwrap().unwrap();
        assert!(diff.contains("array of 2"), "{diff}");
        let diff = diff_json(r#"{"x": 1}"#, r#"{"y": 1}"#).unwrap().unwrap();
        assert!(diff.contains("field \"x\""), "{diff}");
    }
}
