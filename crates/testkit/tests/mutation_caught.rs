//! Proves the differential oracle has teeth: with the test-only
//! `fault-injection` hook armed, a memo-cache hit returns its stored cost
//! with `time_ns` flipped by one ulp — the smallest possible corruption —
//! and the oracle must still name it.
//!
//! Gated behind `required-features = ["fault-injection"]`: plain
//! `cargo test` never compiles the hook. Run via
//! `cargo test -p subset3d-testkit --features fault-injection`.

use subset3d_gpusim::{fault, ArchConfig, Simulator};
use subset3d_testkit::corpus::golden_corpus;
use subset3d_testkit::oracle::run_oracle;

/// Disarms the hook even if an assertion below panics, so a failure here
/// cannot poison other tests in a shared process.
struct Disarm;

impl Drop for Disarm {
    fn drop(&mut self) {
        fault::disarm();
    }
}

#[test]
fn one_ulp_memo_corruption_is_caught() {
    let _guard = Disarm;
    let (_, workload) = golden_corpus().remove(0);
    let sim = Simulator::new(ArchConfig::baseline());

    // Pass 1, disarmed: populates the memo cache; oracle must be clean.
    run_oracle("mutation/populate", &workload, &sim)
        .unwrap()
        .assert_clean();
    assert!(
        sim.cache_stats().hits > 0,
        "corpus must exercise the memo cache or this test is vacuous"
    );

    // Pass 2, armed: every draw served from the cache carries a one-ulp
    // flip in time_ns. The bitwise oracle must report it.
    fault::arm();
    let report = run_oracle("mutation/armed", &workload, &sim).unwrap();
    fault::disarm();
    assert!(
        !report.is_clean(),
        "armed one-ulp memo corruption went undetected"
    );
    assert!(
        report.divergences.iter().any(|d| d.field == "time_ns"),
        "corruption should surface as a time_ns divergence, got: {}",
        report.divergences[0]
    );

    // Disarmed again on a fresh simulator: clean, proving the divergence
    // above came from the armed hook and nothing else.
    let fresh = Simulator::new(ArchConfig::baseline());
    run_oracle("mutation/disarmed", &workload, &fresh)
        .unwrap()
        .assert_clean();
}
