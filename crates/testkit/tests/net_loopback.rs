//! Loopback wire-protocol differential: streaming a golden-corpus
//! profile through the TCP front-end must reproduce the in-process
//! replay bit for bit — same per-chunk subset updates (cluster counts,
//! representative frames, error means down to the last f64 bit) and the
//! same final drained state, at every chunk size tried.
//!
//! The wire carries frames via the binary trace codec and updates as
//! JSON (whose float round-tripping is exact), so any divergence here
//! means the protocol, the codec or the server-side session plumbing
//! changed observable results — never acceptable for a transport layer.

use subset3d_serve::{
    replay, NetClient, NetServer, NetServerConfig, Pressure, ReplayOptions, ServeConfig,
    SubsetUpdate,
};
use subset3d_testkit::corpus::golden_corpus;

const LOOPBACK_CHUNK_FRAMES: [usize; 2] = [3, 7];
const LOOPBACK_SESSIONS: usize = 2;

fn assert_updates_bit_identical(context: &str, wire: &SubsetUpdate, reference: &SubsetUpdate) {
    assert_eq!(wire, reference, "{context}: update diverged");
    // `==` on floats accepts -0.0 == 0.0; the transport must be stricter.
    assert_eq!(
        wire.mean_prediction_error.to_bits(),
        reference.mean_prediction_error.to_bits(),
        "{context}: mean prediction error lost bits on the wire"
    );
    assert_eq!(
        wire.mean_efficiency.to_bits(),
        reference.mean_efficiency.to_bits(),
        "{context}: mean efficiency lost bits on the wire"
    );
    assert_eq!(
        wire.error_bound.to_bits(),
        reference.error_bound.to_bits(),
        "{context}: error bound lost bits on the wire"
    );
    assert_eq!(
        wire.representative_frames, reference.representative_frames,
        "{context}: representative frames diverged"
    );
}

#[test]
fn loopback_stream_reproduces_in_process_replay_bit_for_bit() {
    let config = ServeConfig::default();
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig {
            serve: config.clone(),
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback listener")
    .spawn()
    .expect("spawn listener");
    let addr = server.addr().to_string();

    for (name, workload) in golden_corpus() {
        for chunk_frames in LOOPBACK_CHUNK_FRAMES {
            let reference = replay(
                &workload,
                &config,
                &ReplayOptions {
                    sessions: LOOPBACK_SESSIONS,
                    chunk_frames,
                    telemetry: None,
                },
            )
            .expect("in-process replay");

            for (session_idx, expected_updates) in reference.updates.iter().enumerate() {
                let context = format!("{name}/chunk{chunk_frames}/session{session_idx}");
                let mut client = NetClient::connect(&addr).expect("connect");
                let session = client.open(&workload).expect("open");
                for (chunk_idx, chunk) in workload.frames().chunks(chunk_frames).enumerate() {
                    let got = client.ingest(session, chunk).expect("wire ingest");
                    assert_eq!(
                        got.pressure,
                        Pressure::Nominal,
                        "{context}: no backpressure policy is configured"
                    );
                    assert_updates_bit_identical(
                        &format!("{context}/chunk{chunk_idx}"),
                        &got.update,
                        &expected_updates[chunk_idx],
                    );
                }
                let final_update = client.close(session).expect("close");
                assert_updates_bit_identical(
                    &format!("{context}/final"),
                    &final_update,
                    &reference.reports[session_idx].final_update,
                );
            }
        }
    }

    assert_eq!(
        server.manager().session_count(),
        0,
        "every wire session was closed"
    );
    let stats = server.stop();
    assert_eq!(stats.protocol_errors, 0, "clean streams only");
    assert_eq!(stats.sessions_shed, 0);
}
