//! Batch-width oracle matrix: fixed-width batch execution must be
//! invisible in the output.
//!
//! The columnar simulator chunks every frame into fixed-width batches;
//! the batch width decides memo granularity and cache-line reuse, never
//! results. This matrix replays one corpus workload at widths 1 (draw
//! at a time), 64 (the default) and 128 — each leaving a different
//! ragged tail on ~200-draw frames — under every cache mode and at 1, 2
//! and 8 threads, and requires bit-identity with the struct-at-a-time
//! reference model on every pass.

use subset3d_gpusim::{ArchConfig, DEFAULT_BATCH_WIDTH};
use subset3d_testkit::corpus::oracle_corpus;
use subset3d_testkit::oracle::run_oracle_batch_widths;

#[test]
fn batch_width_matrix_is_clean() {
    let corpus = oracle_corpus();
    let (name, workload) = &corpus[0];
    assert!(
        workload
            .frames()
            .iter()
            .any(|f| f.draw_count() % DEFAULT_BATCH_WIDTH != 0 && f.draw_count() > 128),
        "corpus must exercise ragged tails at every tested width"
    );
    let config = ArchConfig::baseline();
    let widths = [1, DEFAULT_BATCH_WIDTH, 128];
    // 3 widths × 3 cache modes × 2 passes per thread count.
    let expected_per_thread = workload.total_draws() * widths.len() * 3 * 2;
    for threads in [1, 2, 8] {
        subset3d_exec::with_thread_count(threads, || {
            let report = run_oracle_batch_widths(name, workload, &config, &widths)
                .unwrap_or_else(|e| panic!("{name} at {threads} threads: {e}"));
            report.assert_clean();
            assert_eq!(report.draws_compared, expected_per_thread);
        });
    }
}
