//! Backend invariants as proptest properties: every subsetting backend
//! must assign each frame-draw to exactly one cluster, elect exactly one
//! in-cluster representative per cluster, and produce a partition that is
//! invariant under permutation of the frame's draws — for arbitrary
//! profiles, seeds and permutations, not just the corpus.

use proptest::prelude::*;
use subset3d_cluster::{
    KMeansSubsetter, PcaAggloSubsetter, StratifiedSubsetter, Subsetter, ThresholdSubsetter,
};
use subset3d_core::SubsetConfig;
use subset3d_features::extract_frame_features;
use subset3d_testkit::metamorphic::{check_backend_partition, check_backend_permutation};
use subset3d_trace::gen::GameProfile;

const DRAWS_PER_FRAME: usize = 30;

fn backends() -> Vec<Box<dyn Subsetter>> {
    vec![
        Box::new(ThresholdSubsetter::new(1.05)),
        Box::new(KMeansSubsetter::bic(6, 42)),
        Box::new(StratifiedSubsetter::new(5, 0.2, 7)),
        Box::new(PcaAggloSubsetter::new(3, 8)),
    ]
}

/// One frame's normalised feature vectors, exactly as `cluster_frame`
/// feeds them to the backend.
fn frame_points(profile: usize, seed: u64) -> Vec<Vec<f64>> {
    let builder = match profile {
        0 => GameProfile::shooter("props"),
        1 => GameProfile::rts("props"),
        _ => GameProfile::racing("props"),
    };
    let w = builder
        .frames(1)
        .draws_per_frame(DRAWS_PER_FRAME)
        .build(seed)
        .generate();
    let config = SubsetConfig::default();
    let frame = &w.frames()[0];
    let mut matrix = extract_frame_features(frame, &w, config.features.clone());
    matrix.normalize(config.normalization);
    matrix.to_rows()
}

/// Argsort with index tiebreak: turns arbitrary sort keys into a
/// permutation of `0..n`, so a plain `vec(any::<u64>())` strategy samples
/// the permutation space.
fn argsort(keys: &[u64], n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (keys[i % keys.len()], i));
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every backend partitions every draw exactly once with one
    /// in-cluster representative per cluster.
    #[test]
    fn backends_partition_every_draw(profile in 0usize..3, seed in 1u64..10_000) {
        let points = frame_points(profile, seed);
        for backend in backends() {
            let r = check_backend_partition(backend.as_ref(), &points);
            prop_assert!(r.is_ok(), "{r:?}");
        }
    }

    /// Backend output depends only on the multiset of draw features,
    /// never on submission order.
    #[test]
    fn backends_ignore_draw_order(
        profile in 0usize..3,
        seed in 1u64..10_000,
        keys in prop::collection::vec(any::<u64>(), DRAWS_PER_FRAME),
    ) {
        let points = frame_points(profile, seed);
        let perm = argsort(&keys, points.len());
        for backend in backends() {
            let r = check_backend_permutation(backend.as_ref(), &points, &perm);
            prop_assert!(r.is_ok(), "{r:?}");
        }
    }
}
