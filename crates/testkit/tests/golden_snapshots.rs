//! End-to-end golden-snapshot gate: the full pipeline (clustering →
//! evaluation → phases → subset → scaling validation) on the frozen
//! golden corpus, serialised and compared byte-for-byte against
//! `tests/golden/pipeline_<profile>.json`.
//!
//! Regenerate after an intentional behaviour change:
//! `UPDATE_GOLDEN=1 cargo test -p subset3d-testkit --test golden_snapshots`

use subset3d_core::{frequency_scaling_validation, PipelineSnapshot, SubsetConfig, Subsetter};
use subset3d_gpusim::{ArchConfig, FrequencySweep, Simulator};
use subset3d_testkit::corpus::golden_corpus;
use subset3d_testkit::golden::{check_golden, GoldenOutcome};
use subset3d_trace::Workload;

/// Clocks swept by the golden scaling validation; frozen like the corpus.
const GOLDEN_SWEEP_MHZ: [f64; 3] = [500.0, 800.0, 1100.0];

fn snapshot_json(workload: &Workload) -> String {
    let config = ArchConfig::baseline();
    let sim = Simulator::new(config.clone());
    let outcome = Subsetter::new(SubsetConfig::default())
        .run(workload, &sim)
        .expect("pipeline run");
    let scaling = frequency_scaling_validation(
        workload,
        &outcome.subset,
        &config,
        &FrequencySweep::new(GOLDEN_SWEEP_MHZ.to_vec()),
    )
    .expect("scaling validation");
    let snapshot = PipelineSnapshot::capture(workload, &outcome).with_scaling(scaling);
    let mut json = serde_json::to_string_pretty(&snapshot).expect("serialise snapshot");
    json.push('\n');
    json
}

#[test]
fn pipeline_snapshots_match_golden() {
    let mut updated = 0;
    for (name, workload) in golden_corpus() {
        let json = snapshot_json(&workload);
        match check_golden(&format!("pipeline_{name}"), &json) {
            Ok(GoldenOutcome::Match) => {}
            Ok(GoldenOutcome::Updated) => updated += 1,
            Err(e) => panic!("{e}"),
        }
    }
    if updated > 0 {
        eprintln!("regenerated {updated} golden snapshot(s); review `git diff tests/golden/`");
    }
}

/// The snapshot payload itself must be run-to-run deterministic —
/// otherwise the golden gate would flake and `UPDATE_GOLDEN=1` would not
/// regenerate bit-identically.
#[test]
fn snapshot_json_is_bit_identical_across_runs() {
    let (_, workload) = golden_corpus().remove(0);
    let a = snapshot_json(&workload);
    let b = snapshot_json(&workload);
    assert_eq!(a, b, "snapshot serialisation must be deterministic");
}
