//! The metamorphic checkers as proptest properties: every invariant must
//! hold for arbitrary seeds, profiles and permutations, not just the
//! corpus.

use proptest::prelude::*;
use subset3d_core::{cluster_frame, SubsetConfig};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_testkit::metamorphic::{
    check_cache_modes_identical, check_cluster_relabeling, check_draw_permutation,
    check_frequency_monotone,
};
use subset3d_trace::gen::GameProfile;
use subset3d_trace::Workload;

const DRAWS_PER_FRAME: usize = 25;

fn workload(profile: usize, seed: u64) -> Workload {
    let builder = match profile {
        0 => GameProfile::shooter("meta"),
        1 => GameProfile::rts("meta"),
        _ => GameProfile::racing("meta"),
    };
    builder
        .frames(2)
        .draws_per_frame(DRAWS_PER_FRAME)
        .build(seed)
        .generate()
}

/// Turns arbitrary sort keys into a permutation of `0..n` (argsort with
/// index tiebreak), so a plain `vec(any::<u64>())` strategy samples the
/// permutation space. Keys cycle when `n` exceeds the sample — the
/// generator realises a profile-dependent draw count around the requested
/// target, so `n` is only known at run time.
fn argsort(keys: &[u64], n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (keys[i % keys.len()], i));
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Raising only the core clock never slows a workload down.
    #[test]
    fn frequency_monotone(profile in 0usize..3, seed in 1u64..10_000) {
        let w = workload(profile, seed);
        let r = check_frequency_monotone(
            &w,
            &ArchConfig::baseline(),
            &[450.0, 700.0, 1000.0, 1300.0],
        );
        prop_assert!(r.is_ok(), "{r:?}");
    }

    /// Memo caching never changes a result, in any mode, on any pass.
    #[test]
    fn cache_modes_transparent(profile in 0usize..3, seed in 1u64..10_000) {
        let w = workload(profile, seed);
        let r = check_cache_modes_identical(&w, &ArchConfig::baseline());
        prop_assert!(r.is_ok(), "{r:?}");
    }

    /// Isolated frame cost is submission-order independent.
    #[test]
    fn draw_order_irrelevant_in_isolation(
        profile in 0usize..3,
        seed in 1u64..10_000,
        keys in prop::collection::vec(any::<u64>(), DRAWS_PER_FRAME),
    ) {
        let w = workload(profile, seed);
        let frame = &w.frames()[0];
        let perm = argsort(&keys, frame.draw_count());
        let r = check_draw_permutation(frame, &w, &ArchConfig::baseline(), &perm);
        prop_assert!(r.is_ok(), "{r:?}");
    }

    /// Prediction quality ignores cluster numbering.
    #[test]
    fn cluster_labels_irrelevant(
        profile in 0usize..3,
        seed in 1u64..10_000,
        keys in prop::collection::vec(any::<u64>(), DRAWS_PER_FRAME),
    ) {
        let w = workload(profile, seed);
        let frame = &w.frames()[0];
        let clustering = cluster_frame(frame, &w, &SubsetConfig::default());
        let sim = Simulator::new(ArchConfig::baseline());
        let cost = sim.simulate_frame(frame, &w).unwrap();
        let perm = argsort(&keys, clustering.clusters.len());
        let r = check_cluster_relabeling(&clustering, &cost, &perm);
        prop_assert!(r.is_ok(), "{r:?}");
    }
}

/// The `subset3d_cluster`-level relabeling helpers compose with the
/// checkers: a permuted clustering is still a valid partition with
/// identical inertia.
#[test]
fn relabeled_clustering_keeps_partition_and_inertia() {
    use subset3d_cluster::Clustering;

    let points: Vec<Vec<f64>> = (0..40)
        .map(|i| vec![f64::from(i % 5), f64::from(i % 7)])
        .collect();
    let assignments: Vec<usize> = (0..40).map(|i| i % 4).collect();
    let centroids: Vec<Vec<f64>> = (0..4).map(|i| vec![f64::from(i), 1.0]).collect();
    let c = Clustering::new(assignments, centroids);
    c.check_partition().unwrap();

    let perm = [2, 0, 3, 1];
    let relabeled = c.relabeled(&perm);
    relabeled.check_partition().unwrap();
    assert_eq!(
        c.inertia(&points).to_bits(),
        relabeled.inertia(&points).to_bits(),
        "relabeling must not move inertia by a single bit"
    );
    for (i, &a) in c.assignments().iter().enumerate() {
        assert_eq!(relabeled.assignments()[i], perm[a]);
    }
}

/// Feature extraction feeds every invariant above; it must never emit a
/// non-finite value.
#[test]
fn feature_matrices_are_finite() {
    use subset3d_features::{extract_frame_features, FeatureKind};

    let w = workload(0, 99);
    for frame in w.frames() {
        let m = extract_frame_features(frame, &w, FeatureKind::standard_set());
        assert!(m.is_finite(), "non-finite feature in frame");
    }
}
