//! Golden snapshot of the pipeline's trace shape: which events a full
//! subsetting run emits, and how many of each. Timings are wall-clock
//! noise, so the snapshot keeps only the deterministic structure —
//! event counts per (category, name, phase) — and pins it byte for
//! byte under `tests/golden/trace_shape_shooter.json`.
//!
//! The run is forced single-threaded: with one worker the serial
//! fallback executes everything inline, so cache hit/miss sequences
//! (and therefore instant-event counts) are reproducible. Re-bless
//! with `UPDATE_GOLDEN=1` after an intentional instrumentation change.

use std::collections::BTreeMap;
use subset3d_core::{SubsetConfig, Subsetter};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_obs::{start_tracing, stop_tracing, TraceEvent, TraceMode, TracePhase};
use subset3d_testkit::golden::check_golden;
use subset3d_trace::gen::GameProfile;

fn phase_tag(phase: TracePhase) -> &'static str {
    match phase {
        TracePhase::Span => "span",
        TracePhase::Instant => "instant",
        TracePhase::FlowStart => "flow_start",
        TracePhase::FlowEnd => "flow_end",
    }
}

/// Collapses a trace into its deterministic shape: count per
/// `cat/name/phase`, in BTreeMap (= serialisation) order.
fn shape_of(events: &[TraceEvent]) -> BTreeMap<String, u64> {
    let mut shape = BTreeMap::new();
    for ev in events {
        *shape
            .entry(format!("{}/{}/{}", ev.cat, ev.name, phase_tag(ev.phase)))
            .or_insert(0u64) += 1;
    }
    shape
}

#[test]
fn pipeline_trace_shape_matches_golden() {
    let workload = GameProfile::shooter("trace-shape")
        .frames(24)
        .draws_per_frame(40)
        .build(7)
        .generate();

    let events = subset3d_exec::with_thread_count(1, || {
        start_tracing(TraceMode::Full);
        let sim = Simulator::new(ArchConfig::baseline());
        let outcome = Subsetter::new(SubsetConfig::default()).run(&workload, &sim);
        let events = stop_tracing();
        outcome.expect("pipeline");
        events
    });

    let shape = shape_of(&events);
    assert!(
        shape.keys().any(|k| k.starts_with("pipeline/")),
        "pipeline stages must be traced"
    );

    // Flow arrows must already pair up before the shape is pinned —
    // a broken link would otherwise only fail at re-bless time.
    let starts: u64 = shape
        .iter()
        .filter(|(k, _)| k.ends_with("/flow_start"))
        .map(|(_, v)| v)
        .sum();
    let ends: u64 = shape
        .iter()
        .filter(|(k, _)| k.ends_with("/flow_end"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(starts, ends, "unpaired flow arrows in the pipeline trace");

    let snapshot = serde_json::to_string_pretty(&shape).expect("serialize shape");
    if let Err(msg) = check_golden("trace_shape_shooter", &snapshot) {
        panic!("{msg}");
    }
}
