//! Backend oracle matrix: every clustering backend × 3 cache modes ×
//! {1, 2, 8} threads × 2 passes on a small workload, every float compared
//! bitwise against the naive reference.
//!
//! One `#[test]` on purpose: the thread count is process-global, so the
//! sweep must own it for its whole duration (`with_thread_count` restores
//! the ambient pool afterwards). The workload is deliberately small —
//! the PCA + agglomerative backend is O(n³) in draws per frame.

use subset3d_core::{ClusterMethod, SubsetConfig};
use subset3d_gpusim::ArchConfig;
use subset3d_testkit::oracle::run_oracle_all_modes_with_config;
use subset3d_trace::gen::GameProfile;
use subset3d_trace::Workload;

fn methods() -> Vec<(&'static str, ClusterMethod)> {
    vec![
        ("threshold", ClusterMethod::Threshold { distance: 1.05 }),
        ("kmeans", ClusterMethod::KMeansBic { max_k: 8 }),
        (
            "stratified",
            ClusterMethod::Stratified {
                strata: 6,
                rate: 0.15,
            },
        ),
        (
            "pca-agglo",
            ClusterMethod::PcaAgglo {
                components: 3,
                clusters: 10,
            },
        ),
    ]
}

fn small_workload() -> Workload {
    GameProfile::shooter("backend-oracle")
        .frames(4)
        .draws_per_frame(60)
        .build(29)
        .generate()
}

#[test]
fn every_backend_is_deterministic_across_threads_and_cache_modes() {
    let workload = small_workload();
    let config = ArchConfig::baseline();
    // 3 cache modes × 2 passes × 3 thread counts per backend.
    let expected = workload.total_draws() * 3 * 2 * 3 * methods().len();
    let mut draws_compared = 0;
    for threads in [1, 2, 8] {
        subset3d_exec::with_thread_count(threads, || {
            for (name, method) in methods() {
                let subset_config = SubsetConfig::default().with_cluster_method(method);
                let report =
                    run_oracle_all_modes_with_config(name, &workload, &config, &subset_config)
                        .unwrap_or_else(|e| panic!("{name} at {threads} threads: {e}"));
                report.assert_clean();
                draws_compared += report.draws_compared;
            }
        });
    }
    assert_eq!(draws_compared, expected);
}
