//! Tier-1 streaming-vs-batch differential oracle matrix.
//!
//! Every golden-corpus profile is drained through concurrent serve
//! sessions at each oracle chunk size and thread count; the result must
//! reproduce the batch pipeline bit for bit (full-reservoir runs) or
//! within the documented drift bound (overflowing-reservoir runs). The
//! exec pool is process global, so the thread-count sweeps serialise
//! behind a lock.

use std::sync::Mutex;
use subset3d_core::{ClusterMethod, SubsetConfig};
use subset3d_testkit::corpus::golden_corpus;
use subset3d_testkit::streaming::{
    run_drift_check, run_streaming_oracle, ORACLE_CHUNK_FRAMES, ORACLE_THREADS,
};

// Thread-count sweeps resize the global pool; never interleave them.
static POOL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn streaming_matches_batch_across_chunks_and_threads() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (name, workload) in golden_corpus() {
        for threads in ORACLE_THREADS {
            subset3d_exec::with_thread_count(threads, || {
                for chunk in ORACLE_CHUNK_FRAMES {
                    let context = format!("{name}/{threads}t");
                    run_streaming_oracle(&context, &workload, &SubsetConfig::default(), chunk)
                        .unwrap_or_else(|e| panic!("{e}"));
                }
            });
        }
    }
}

#[test]
fn streaming_matches_batch_for_every_backend() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let methods = [
        ClusterMethod::Threshold { distance: 1.02 },
        ClusterMethod::KMeansBic { max_k: 6 },
        ClusterMethod::KMeansFixed { k: 3 },
        ClusterMethod::Stratified {
            strata: 4,
            rate: 0.25,
        },
        ClusterMethod::PcaAgglo {
            components: 3,
            clusters: 4,
        },
    ];
    let corpus = golden_corpus();
    let (name, workload) = &corpus[0];
    for method in methods {
        let config = SubsetConfig::default().with_cluster_method(method.clone());
        for chunk in [1, usize::MAX] {
            let context = format!("{name}/{method:?}");
            run_streaming_oracle(&context, workload, &config, chunk)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn overflowing_reservoir_stays_within_drift_bound() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (name, workload) in golden_corpus() {
        // Golden corpora have 12 frames; a 4-frame reservoir overflows
        // by 3x.
        for chunk in [1, 5] {
            run_drift_check(name, &workload, &SubsetConfig::default(), chunk, 4)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
