//! The full oracle matrix: 3 game profiles × 3 cache modes × {1, 2, 8}
//! threads × 2 passes, every float compared bitwise against the naive
//! reference.
//!
//! One `#[test]` on purpose: the thread count is process-global, so the
//! sweep must own it for its whole duration. `with_thread_count` restores
//! the ambient pool afterwards.

use subset3d_gpusim::ArchConfig;
use subset3d_testkit::corpus::oracle_corpus;
use subset3d_testkit::oracle::run_oracle_all_modes;

#[test]
fn oracle_matrix_is_clean() {
    let corpus = oracle_corpus();
    let config = ArchConfig::baseline();
    // 3 cache modes × 2 passes × 3 thread counts per workload.
    let expected: usize = corpus.iter().map(|(_, w)| w.total_draws()).sum::<usize>() * 3 * 2 * 3;
    let mut draws_compared = 0;
    for threads in [1, 2, 8] {
        subset3d_exec::with_thread_count(threads, || {
            for (name, workload) in &corpus {
                let report = run_oracle_all_modes(name, workload, &config)
                    .unwrap_or_else(|e| panic!("{name} at {threads} threads: {e}"));
                report.assert_clean();
                draws_compared += report.draws_compared;
            }
        });
    }
    assert_eq!(draws_compared, expected);
}
