//! Shared measurement machinery behind `bench_report` and `bench_diff`.
//!
//! `bench_report` writes the full [`Report`] to `BENCH_pipeline.json`;
//! `bench_diff` deserialises committed reports and re-collects fresh
//! ones, so everything here derives both `Serialize` and `Deserialize`
//! and the timing helpers are shared (same workload, same scenarios,
//! same medians) to keep the two binaries comparable.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use subset3d_core::{ClusterMethod, SubsetConfig, Subsetter};
use subset3d_gpusim::{ArchConfig, CacheMode, Simulator, SweepSession};
use subset3d_serve::{
    replay, NetClient, NetServer, NetServerConfig, ReplayOptions, ReplayOutcome, ServeConfig,
    TelemetryOptions,
};
use subset3d_trace::gen::GameProfile;
use subset3d_trace::Workload;

/// Timing runs per scenario measurement; the best is reported.
pub const RUNS: usize = 3;

/// Sweep passes in the iterated-sweep scenario.
pub const SWEEP_PASSES: usize = 4;

/// Interleaved off/on repetitions behind each overhead median. Five
/// pairs, not one: a single pair is dominated by scheduling noise (the
/// committed report once claimed a *negative* metrics overhead).
pub const OVERHEAD_REPS: usize = 5;

/// One timed arm of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Wall time in milliseconds.
    pub wall_ms: f64,
    /// Simulated draws per second at that wall time.
    pub draws_per_sec: f64,
}

/// A baseline-vs-optimized comparison on one workload shape.
///
/// Cache counters come from a dedicated instrumented pass on a simulator
/// *shared across scenarios*, reported as the delta over that scenario's
/// own pass ([`subset3d_gpusim::CacheStats::delta`]). Fresh-simulator
/// stats passes used to make every scenario's counters an identical
/// transcript of the same cold run over the same workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// One thread, memoization off — the pre-executor behaviour.
    pub single_thread_uncached: Measurement,
    /// Default threads, memoization on.
    pub parallel_memoized: Measurement,
    /// `single_thread_uncached / parallel_memoized` wall-time ratio.
    pub speedup: f64,
    /// Draw-shape cache hit rate of the optimized arm; `null` when the
    /// cache never served a lookup (zero hits) — whether it was never
    /// consulted at all or only paid probe-window misses before
    /// disabling itself. Both cases mean "memoization contributed
    /// nothing here", and reporting the probe window's `0.0` as a rate
    /// made scenarios flap between `0.0` and `null`.
    pub cache_hit_rate: Option<f64>,
    /// Batch cache hit rate of the optimized arm; `null` when no batch
    /// lookup was served, by the same convention as `cache_hit_rate`.
    /// The alias keeps pre-columnar reports (which recorded a per-frame
    /// cache) deserializable.
    #[serde(alias = "frame_cache_hit_rate")]
    pub batch_cache_hit_rate: Option<f64>,
    /// Draws the optimized arm computed without probing the shape cache
    /// (adaptive bypass windows).
    #[serde(default)]
    pub bypassed: u64,
    /// Times the adaptive policy disabled the shape cache mid-stream.
    #[serde(default)]
    pub auto_disables: u64,
    /// Times a disabled cache re-armed to probe for a profitable phase.
    #[serde(default)]
    pub reprobes: u64,
}

/// Everything `bench_report` measures — the schema of
/// `BENCH_pipeline.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Thread count of the parallel arms.
    pub threads: usize,
    /// Frames in the bench workload.
    pub workload_frames: usize,
    /// Draws in the bench workload.
    pub workload_draws: usize,
    /// Candidate configs in the sweep scenarios.
    pub sweep_candidates: usize,
    /// Passes in the iterated-sweep scenario.
    pub sweep_passes: usize,
    /// One cold `simulate_workload` pass, out-of-the-box configuration.
    pub workload_sim: Scenario,
    /// [`SWEEP_PASSES`] passes of the pathfinding sweep via a session.
    pub iterated_sweep: Scenario,
    /// Clustering + evaluation end to end.
    pub subsetting_pipeline: Scenario,
    /// Wall-time cost of metric recording on the workload_sim shape:
    /// median of [`OVERHEAD_REPS`] interleaved off/on pairs, in percent,
    /// clamped at zero. A negative median is scheduling noise, and a
    /// committed negative value poisons downstream absolute-budget
    /// checks; the signed median survives in `metrics_overhead_raw_pct`.
    pub metrics_overhead_pct: f64,
    /// The unclamped signed median behind `metrics_overhead_pct`.
    /// Absent from reports predating the clamp, hence the default.
    #[serde(default)]
    pub metrics_overhead_raw_pct: f64,
    /// Wall-time cost of flight-recorder event tracing on the same
    /// shape, measured and clamped like `metrics_overhead_pct`. Absent
    /// from reports predating the tracing layer, hence the default.
    #[serde(default)]
    pub trace_overhead_pct: f64,
    /// The unclamped signed median behind `trace_overhead_pct`.
    #[serde(default)]
    pub trace_overhead_raw_pct: f64,
    /// Wall-time cost of time-series telemetry on the serve-replay
    /// shape: a telemetry-on replay (metric recording plus an
    /// interval-zero sampler cutting a window every chunk round — the
    /// most aggressive cadence the CLI can request) against a plain
    /// replay, measured and clamped like `metrics_overhead_pct`. Absent
    /// from reports predating the telemetry layer, hence the default.
    #[serde(default)]
    pub telemetry_overhead_pct: f64,
    /// The unclamped signed median behind `telemetry_overhead_pct`.
    #[serde(default)]
    pub telemetry_overhead_raw_pct: f64,
    /// Wall time of one differential-oracle comparison over the testkit
    /// corpus (all cache modes, both passes) — the price of the tier-1
    /// `testkit` step, tracked so harness regressions are visible.
    pub oracle_check_ms: f64,
    /// Snapshot of an instrumented sweep-plus-pipeline pass.
    pub metrics: subset3d_obs::MetricsSnapshot,
    /// Cross-methodology bake-off: every clustering backend scored on
    /// every game profile (see [`collect_bakeoff`]). Absent from reports
    /// predating pluggable backends, hence the default.
    #[serde(default)]
    pub bakeoff: Vec<BackendScore>,
    /// Streaming-service replay throughput and incremental-fit latency.
    /// Absent from reports predating the serve layer, hence the default.
    #[serde(default)]
    pub serve_replay: Option<ServeReplayBench>,
    /// The same stream pushed through the loopback wire-protocol
    /// front-end, measured against `serve_replay`'s in-process ingest
    /// baseline. Absent from reports predating the network front-end,
    /// hence the default.
    #[serde(default)]
    pub serve_net: Option<ServeNetBench>,
}

/// Percentile digest of a set of per-call latencies, nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyDigest {
    /// Samples the digest summarises.
    pub count: usize,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: f64,
    /// Median latency.
    pub p50_ns: u64,
    /// 90th-percentile latency.
    pub p90_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// Worst observed latency.
    pub max_ns: u64,
}

impl LatencyDigest {
    /// Digests `samples` (any order); all-zero for an empty set.
    pub fn of(samples: &[u64]) -> LatencyDigest {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        LatencyDigest {
            count: sorted.len(),
            mean_ns: if sorted.is_empty() {
                0.0
            } else {
                sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
            },
            p50_ns: pct(50.0),
            p90_ns: pct(90.0),
            p99_ns: pct(99.0),
            max_ns: sorted.last().copied().unwrap_or(0),
        }
    }
}

/// The streaming-service replay scenario: the bench workload cut into
/// chunks and fanned through concurrent serve sessions on the shared
/// pool (see [`collect_serve_replay`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReplayBench {
    /// Concurrent sessions fed the same stream.
    pub sessions: usize,
    /// Frames per ingested chunk.
    pub chunk_frames: usize,
    /// Frames streamed into each session.
    pub frames_per_session: usize,
    /// Session drains per wall-clock second.
    pub sessions_per_sec: f64,
    /// Frame ingests per wall-clock second, summed over sessions.
    pub frames_per_sec: f64,
    /// Per-chunk incremental-fit (ingest call) latency distribution.
    pub ingest_latency: LatencyDigest,
}

/// The wire-protocol ingestion scenario: the serve-replay stream framed
/// through a loopback TCP listener (see [`collect_serve_net`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeNetBench {
    /// Sessions streamed over the wire.
    pub sessions: usize,
    /// Frames per ingested chunk.
    pub chunk_frames: usize,
    /// Frames streamed into each session.
    pub frames_per_session: usize,
    /// Frame ingests per wall-clock second, summed over sessions.
    pub frames_per_sec: f64,
    /// Per-chunk round-trip latency: encode, loopback TCP, server
    /// ingest, JSON update reply.
    pub wire_latency: LatencyDigest,
    /// Mean wire round-trip over the in-process `serve_replay` mean
    /// ingest — the framing + loopback overhead factor; `0.0` when the
    /// baseline mean is degenerate (zero).
    pub wire_overhead_ratio: f64,
}

/// One backend × profile cell of the cross-methodology bake-off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendScore {
    /// Backend name, in its CLI `--backend` spelling.
    pub backend: String,
    /// Game profile the score was measured on.
    pub profile: String,
    /// Mean relative frame-prediction error of the subset.
    pub prediction_error: f64,
    /// Mean clustering efficiency in `[0, 1]` — the fraction of draw
    /// simulation avoided (paper target ≈ 0.658).
    pub efficiency: f64,
    /// Fraction of frames whose prediction error is an outlier.
    pub outlier_fraction: f64,
}

/// Wall time of one invocation of `f`, in milliseconds.
pub fn one_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`runs` wall time of `f`, in milliseconds.
pub fn best_ms(mut f: impl FnMut(), runs: usize) -> f64 {
    (0..runs.max(1))
        .map(|_| one_ms(&mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Median-of-`runs` wall time of `f`, in milliseconds — the noise-robust
/// timing `bench_diff` uses for fresh runs.
pub fn median_ms(mut f: impl FnMut(), runs: usize) -> f64 {
    let samples: Vec<f64> = (0..runs.max(1)).map(|_| one_ms(&mut f)).collect();
    median(samples)
}

/// Median of a sample set (mean of the middle two for even counts).
/// Panics on an empty input — callers always measure at least once.
pub fn median(mut values: Vec<f64>) -> f64 {
    assert!(!values.is_empty(), "median of no samples");
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Median relative overhead, in percent, of `with` over `without`:
/// [`OVERHEAD_REPS`] interleaved pairs so drift hits both arms equally.
/// Pairs whose baseline arm is too fast to time (0 ms on a coarse clock)
/// have no meaningful ratio and are skipped; if every pair degenerates,
/// the overhead is reported as `0.0` rather than `inf`/`NaN`.
pub fn paired_overhead_pct(mut without: impl FnMut() -> f64, mut with: impl FnMut() -> f64) -> f64 {
    let pcts: Vec<f64> = (0..OVERHEAD_REPS)
        .filter_map(|_| {
            let off = without();
            let on = with();
            (off > 0.0).then(|| (on - off) / off * 100.0)
        })
        .collect();
    if pcts.is_empty() {
        return 0.0;
    }
    median(pcts)
}

/// The workload every scenario runs on.
pub fn bench_workload() -> Workload {
    GameProfile::shooter("bench")
        .frames(120)
        .draws_per_frame(400)
        .build(11)
        .generate()
}

/// Frames in each bake-off workload.
pub const BAKEOFF_FRAMES: usize = 24;

/// Draws per frame in each bake-off workload — deliberately modest: the
/// PCA + agglomerative backend is O(n³) in draws per frame.
pub const BAKEOFF_DRAWS_PER_FRAME: usize = 150;

/// The backends the bake-off compares, with the same parameters the CLI
/// `--backend` flag applies.
fn bakeoff_methods() -> Vec<(&'static str, ClusterMethod)> {
    vec![
        ("threshold", ClusterMethod::Threshold { distance: 1.05 }),
        ("kmeans", ClusterMethod::KMeansBic { max_k: 12 }),
        (
            "stratified",
            ClusterMethod::Stratified {
                strata: 8,
                rate: 0.1,
            },
        ),
        (
            "pca-agglo",
            ClusterMethod::PcaAgglo {
                components: 4,
                clusters: 16,
            },
        ),
    ]
}

fn bakeoff_scores(frames: usize, draws_per_frame: usize) -> Vec<BackendScore> {
    let mut scores = Vec::new();
    for (profile, seed) in [("shooter", 11u64), ("rts", 13), ("racing", 17)] {
        let builder = match profile {
            "shooter" => GameProfile::shooter(profile),
            "rts" => GameProfile::rts(profile),
            _ => GameProfile::racing(profile),
        };
        let workload = builder
            .frames(frames)
            .draws_per_frame(draws_per_frame)
            .build(seed)
            .generate();
        for (name, method) in bakeoff_methods() {
            let sim = Simulator::new(ArchConfig::baseline());
            let outcome = Subsetter::new(SubsetConfig::default().with_cluster_method(method))
                .run(&workload, &sim)
                .expect("bake-off pipeline");
            scores.push(BackendScore {
                backend: name.to_string(),
                profile: profile.to_string(),
                prediction_error: outcome.evaluation.mean_prediction_error(),
                efficiency: outcome.evaluation.mean_efficiency(),
                outlier_fraction: outcome.evaluation.outlier_fraction(),
            });
        }
    }
    scores
}

/// Runs the cross-methodology bake-off: every clustering backend on
/// every game profile, scored on the paper's three quality axes —
/// prediction error, subsetting efficiency and outlier fraction.
pub fn collect_bakeoff() -> Vec<BackendScore> {
    bakeoff_scores(BAKEOFF_FRAMES, BAKEOFF_DRAWS_PER_FRAME)
}

/// Concurrent sessions in the serve-replay scenario.
pub const SERVE_SESSIONS: usize = 4;

/// Frames per chunk in the serve-replay scenario.
pub const SERVE_CHUNK_FRAMES: usize = 16;

/// Streams `workload` through [`SERVE_SESSIONS`] concurrent serve
/// sessions in [`SERVE_CHUNK_FRAMES`]-frame chunks, [`RUNS`] times, and
/// digests the fastest run: drain/ingest throughput plus the per-chunk
/// incremental-fit latency distribution.
pub fn collect_serve_replay(workload: &Workload) -> ServeReplayBench {
    let config = ServeConfig::default();
    let options = ReplayOptions {
        sessions: SERVE_SESSIONS,
        chunk_frames: SERVE_CHUNK_FRAMES,
        ..Default::default()
    };
    let mut best: Option<ReplayOutcome> = None;
    for _ in 0..RUNS {
        let outcome = replay(workload, &config, &options).expect("serve replay");
        if best.as_ref().is_none_or(|b| outcome.wall_ns < b.wall_ns) {
            best = Some(outcome);
        }
    }
    let outcome = best.expect("RUNS >= 1");
    let summary = outcome.summary();
    ServeReplayBench {
        sessions: summary.sessions,
        chunk_frames: summary.chunk_frames,
        frames_per_session: summary.frames_per_session,
        sessions_per_sec: summary.sessions_per_sec,
        frames_per_sec: summary.frames_per_sec,
        ingest_latency: LatencyDigest::of(&outcome.ingest_ns),
    }
}

/// Streams `workload` through a loopback [`NetServer`] with
/// [`SERVE_SESSIONS`] sequential sessions in [`SERVE_CHUNK_FRAMES`]-frame
/// chunks, [`RUNS`] times, and digests the fastest run's per-chunk wire
/// round-trips against `baseline`'s in-process ingest latency.
pub fn collect_serve_net(workload: &Workload, baseline: &ServeReplayBench) -> ServeNetBench {
    let server = NetServer::bind("127.0.0.1:0", NetServerConfig::default())
        .expect("bind loopback bench listener")
        .spawn()
        .expect("spawn bench listener");
    let addr = server.addr().to_string();

    let mut best: Option<(u64, Vec<u64>)> = None;
    for _ in 0..RUNS {
        let run_start = Instant::now();
        let mut wire_ns = Vec::new();
        for _ in 0..SERVE_SESSIONS {
            let mut client = NetClient::connect(&addr).expect("connect bench client");
            let session = client.open(workload).expect("open bench session");
            for chunk in workload.frames().chunks(SERVE_CHUNK_FRAMES) {
                let start = Instant::now();
                client.ingest(session, chunk).expect("wire ingest");
                wire_ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            client.close(session).expect("close bench session");
        }
        let wall_ns = u64::try_from(run_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if best.as_ref().is_none_or(|(b, _)| wall_ns < *b) {
            best = Some((wall_ns, wire_ns));
        }
    }
    server.stop();

    let (wall_ns, wire_ns) = best.expect("RUNS >= 1");
    let frames_per_session = workload.frames().len();
    let total_frames = frames_per_session * SERVE_SESSIONS;
    let wire_latency = LatencyDigest::of(&wire_ns);
    ServeNetBench {
        sessions: SERVE_SESSIONS,
        chunk_frames: SERVE_CHUNK_FRAMES,
        frames_per_session,
        frames_per_sec: if wall_ns > 0 {
            total_frames as f64 / (wall_ns as f64 / 1e9)
        } else {
            0.0
        },
        wire_overhead_ratio: if baseline.ingest_latency.mean_ns > 0.0 {
            wire_latency.mean_ns / baseline.ingest_latency.mean_ns
        } else {
            0.0
        },
        wire_latency,
    }
}

fn measurement(wall_ms: f64, draws: usize) -> Measurement {
    Measurement {
        wall_ms,
        // A 0 ms median (sub-millisecond stage on a coarse clock) has no
        // meaningful rate; report 0 rather than `inf` so the JSON stays
        // finite and `bench_diff` can flag the row as degenerate.
        draws_per_sec: if wall_ms > 0.0 {
            draws as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
    }
}

fn scenario(draws: usize, base: f64, opt: f64, stats: subset3d_gpusim::CacheStats) -> Scenario {
    Scenario {
        // 0.0 marks "not measurable" (optimized arm too fast to time);
        // `bench_diff` treats it as a degenerate baseline, not a ratio.
        speedup: if opt > 0.0 { base / opt } else { 0.0 },
        single_thread_uncached: measurement(base, draws),
        parallel_memoized: measurement(opt, draws),
        cache_hit_rate: stats.hit_rate(),
        batch_cache_hit_rate: stats.batch_hit_rate(),
        bypassed: stats.bypassed,
        auto_disables: stats.auto_disables,
        reprobes: stats.reprobes,
    }
}

/// Runs the full measurement suite and returns the report.
///
/// `timer` is the scenario-timing policy: [`best_ms`] in `bench_report`
/// (fastest clean run), [`median_ms`] in `bench_diff` (robust against a
/// single slow outlier when a failing comparison must mean something).
pub fn collect(timer: fn(&mut dyn FnMut(), usize) -> f64) -> Report {
    let threads = subset3d_exec::default_threads();
    let workload = bench_workload();
    let candidates = ArchConfig::pathfinding_candidates();
    let draws = workload.total_draws();

    // Thread-count changes happen OUTSIDE the timed closures: resizing
    // spawns a fresh pool, and measuring that re-spawn used to shave the
    // parallel arms' speedups below their true value.

    // One simulator feeds every non-sweep scenario's instrumented stats
    // pass; each scenario snapshots the counters first and reports the
    // delta over its own pass. Per-scenario fresh simulators used to
    // replay the same cold transcript, so every scenario published
    // byte-identical cache stats.
    let stats_sim = Simulator::new(ArchConfig::baseline());

    // -- workload simulation (cold, out-of-the-box) --------------------
    subset3d_exec::set_thread_count(threads);
    let sim_stats = {
        let before = stats_sim.cache_stats();
        stats_sim.simulate_workload(&workload).expect("simulate");
        stats_sim.cache_stats().delta(&before)
    };
    subset3d_exec::set_thread_count(1);
    let base = timer(
        &mut || {
            let sim = Simulator::new(ArchConfig::baseline());
            sim.set_cache_mode(CacheMode::Off);
            sim.simulate_workload(&workload).expect("simulate");
        },
        RUNS,
    );
    subset3d_exec::set_thread_count(threads);
    let opt = timer(
        &mut || {
            let sim = Simulator::new(ArchConfig::baseline());
            sim.simulate_workload(&workload).expect("simulate");
        },
        RUNS,
    );
    let workload_sim = scenario(draws, base, opt, sim_stats);

    // -- iterated pathfinding sweep ------------------------------------
    let sweep_stats = {
        let session = SweepSession::new(&candidates).expect("session");
        for _ in 0..SWEEP_PASSES {
            session.sweep(&workload).expect("sweep");
        }
        session.cache_stats()
    };
    subset3d_exec::set_thread_count(1);
    let base = timer(
        &mut || {
            let session = SweepSession::new(&candidates).expect("session");
            session.set_cache_mode(CacheMode::Off);
            for _ in 0..SWEEP_PASSES {
                session.sweep(&workload).expect("sweep");
            }
        },
        RUNS,
    );
    subset3d_exec::set_thread_count(threads);
    let opt = timer(
        &mut || {
            let session = SweepSession::new(&candidates).expect("session");
            for _ in 0..SWEEP_PASSES {
                session.sweep(&workload).expect("sweep");
            }
        },
        RUNS,
    );
    let iterated_sweep = scenario(
        draws * candidates.len() * SWEEP_PASSES,
        base,
        opt,
        sweep_stats,
    );

    // -- subsetting pipeline -------------------------------------------
    // Same shared simulator: this scenario's stats show pipeline cache
    // behaviour over a warm cache, not a re-run of workload_sim's cold
    // transcript.
    let pipeline_stats = {
        let before = stats_sim.cache_stats();
        Subsetter::new(SubsetConfig::default())
            .run(&workload, &stats_sim)
            .expect("pipeline");
        stats_sim.cache_stats().delta(&before)
    };
    subset3d_exec::set_thread_count(1);
    let base = timer(
        &mut || {
            let sim = Simulator::new(ArchConfig::baseline());
            sim.set_cache_mode(CacheMode::Off);
            Subsetter::new(SubsetConfig::default())
                .run(&workload, &sim)
                .expect("pipeline");
        },
        RUNS,
    );
    subset3d_exec::set_thread_count(threads);
    let opt = timer(
        &mut || {
            let sim = Simulator::new(ArchConfig::baseline());
            Subsetter::new(SubsetConfig::default())
                .run(&workload, &sim)
                .expect("pipeline");
        },
        RUNS,
    );
    let subsetting_pipeline = scenario(draws, base, opt, pipeline_stats);

    // -- observability overhead ----------------------------------------
    // Same shape as workload_sim's optimized arm; each rep interleaves
    // an off and an on pass so machine drift cancels.
    let sim_pass = || {
        let sim = Simulator::new(ArchConfig::baseline());
        sim.simulate_workload(&workload).expect("simulate");
    };
    let metrics_overhead_raw_pct = paired_overhead_pct(
        || one_ms(sim_pass),
        || {
            subset3d_obs::reset();
            subset3d_obs::set_enabled(true);
            let ms = one_ms(sim_pass);
            subset3d_obs::set_enabled(false);
            ms
        },
    );
    let trace_overhead_raw_pct = paired_overhead_pct(
        || one_ms(sim_pass),
        || {
            subset3d_obs::start_tracing(subset3d_obs::TraceMode::Flight);
            let ms = one_ms(sim_pass);
            subset3d_obs::stop_tracing();
            ms
        },
    );

    // -- instrumented snapshot -----------------------------------------
    subset3d_obs::reset();
    subset3d_obs::set_enabled(true);
    {
        let session = SweepSession::new(&candidates).expect("session");
        for _ in 0..SWEEP_PASSES {
            session.sweep(&workload).expect("sweep");
        }
        let sim = Simulator::new(ArchConfig::baseline());
        Subsetter::new(SubsetConfig::default())
            .run(&workload, &sim)
            .expect("pipeline");
    }
    let metrics = subset3d_obs::snapshot();
    subset3d_obs::set_enabled(false);

    // -- differential-oracle wall time ---------------------------------
    let oracle_corpus = subset3d_testkit::corpus::oracle_corpus();
    let oracle_check_ms = timer(
        &mut || {
            for (name, workload) in &oracle_corpus {
                subset3d_testkit::oracle::run_oracle_all_modes(
                    name,
                    workload,
                    &ArchConfig::baseline(),
                )
                .expect("oracle")
                .assert_clean();
            }
        },
        RUNS,
    );

    // -- streaming service replay --------------------------------------
    // Runs on the same default-thread pool as the parallel arms.
    let serve_replay = collect_serve_replay(&workload);

    // -- wire-protocol ingestion ---------------------------------------
    // The same stream over a loopback listener, against the in-process
    // latency baseline just collected.
    let serve_net = collect_serve_net(&workload, &serve_replay);

    // -- telemetry-sampling overhead -----------------------------------
    // Paired like the other observability overheads, on the serve-replay
    // shape: each rep interleaves a plain replay and a telemetry-on
    // replay (interval zero: a sampled window per chunk round), so the
    // measured cost is the full CLI telemetry path — metric recording
    // plus per-round registry snapshots and rolling-digest merges. Each
    // arm is itself a median of [`RUNS`] replays: a replay is ~25× the
    // wall time of the sim pass behind the other overheads and its
    // 4-session pool scheduling is noisy enough that single-shot pairs
    // once committed a pure-noise reading over the 2 % budget.
    let serve_config = ServeConfig::default();
    let plain_options = ReplayOptions {
        sessions: SERVE_SESSIONS,
        chunk_frames: SERVE_CHUNK_FRAMES,
        ..Default::default()
    };
    let telemetry_options = ReplayOptions {
        sessions: SERVE_SESSIONS,
        chunk_frames: SERVE_CHUNK_FRAMES,
        telemetry: Some(TelemetryOptions {
            interval: Duration::ZERO,
            ..TelemetryOptions::default()
        }),
    };
    let telemetry_overhead_raw_pct = paired_overhead_pct(
        || {
            median_ms(
                || {
                    replay(&workload, &serve_config, &plain_options).expect("replay");
                },
                RUNS,
            )
        },
        || {
            median_ms(
                || {
                    replay(&workload, &serve_config, &telemetry_options).expect("replay");
                },
                RUNS,
            )
        },
    );

    Report {
        threads,
        workload_frames: workload.frames().len(),
        workload_draws: draws,
        sweep_candidates: candidates.len(),
        sweep_passes: SWEEP_PASSES,
        workload_sim,
        iterated_sweep,
        subsetting_pipeline,
        metrics_overhead_pct: metrics_overhead_raw_pct.max(0.0),
        metrics_overhead_raw_pct,
        trace_overhead_pct: trace_overhead_raw_pct.max(0.0),
        trace_overhead_raw_pct,
        telemetry_overhead_pct: telemetry_overhead_raw_pct.max(0.0),
        telemetry_overhead_raw_pct,
        oracle_check_ms,
        metrics,
        bakeoff: collect_bakeoff(),
        serve_replay: Some(serve_replay),
        serve_net: Some(serve_net),
    }
}

/// [`best_ms`] with the `fn`-pointer signature [`collect`] takes.
pub fn best_timer(f: &mut dyn FnMut(), runs: usize) -> f64 {
    best_ms(f, runs)
}

/// [`median_ms`] with the `fn`-pointer signature [`collect`] takes.
pub fn median_timer(f: &mut dyn FnMut(), runs: usize) -> f64 {
    median_ms(f, runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let m = Measurement {
            wall_ms: 1.5,
            draws_per_sec: 2e6,
        };
        let s = Scenario {
            single_thread_uncached: m.clone(),
            parallel_memoized: m,
            speedup: 1.0,
            cache_hit_rate: Some(0.5),
            batch_cache_hit_rate: Some(0.25),
            bypassed: 0,
            auto_disables: 0,
            reprobes: 0,
        };
        Report {
            threads: 4,
            workload_frames: 10,
            workload_draws: 100,
            sweep_candidates: 6,
            sweep_passes: 4,
            workload_sim: s.clone(),
            iterated_sweep: s.clone(),
            subsetting_pipeline: s,
            metrics_overhead_pct: 0.0,
            metrics_overhead_raw_pct: -0.5,
            trace_overhead_pct: 1.25,
            trace_overhead_raw_pct: 1.25,
            telemetry_overhead_pct: 0.75,
            telemetry_overhead_raw_pct: 0.75,
            oracle_check_ms: 12.0,
            metrics: subset3d_obs::MetricsSnapshot::default(),
            bakeoff: vec![BackendScore {
                backend: "threshold".to_string(),
                profile: "shooter".to_string(),
                prediction_error: 0.05,
                efficiency: 12.5,
                outlier_fraction: 0.02,
            }],
            serve_replay: Some(ServeReplayBench {
                sessions: 4,
                chunk_frames: 16,
                frames_per_session: 120,
                sessions_per_sec: 8.0,
                frames_per_sec: 960.0,
                ingest_latency: LatencyDigest::of(&[100, 200, 300, 400]),
            }),
            serve_net: Some(ServeNetBench {
                sessions: 4,
                chunk_frames: 16,
                frames_per_session: 120,
                frames_per_sec: 800.0,
                wire_latency: LatencyDigest::of(&[150, 250, 350, 450]),
                wire_overhead_ratio: 1.2,
            }),
        }
    }

    #[test]
    fn median_handles_odd_even_and_unsorted() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(vec![7.0]), 7.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn reports_without_trace_overhead_still_deserialize() {
        // Committed BENCH files from before the tracing layer lack the
        // field; `#[serde(default)]` must absorb that.
        let json = serde_json::to_string_pretty(&sample_report()).unwrap();
        let stripped = json.replace("\"trace_overhead_pct\": 1.25,\n  ", "");
        assert!(!stripped.contains("trace_overhead_pct"));
        let back: Report = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.trace_overhead_pct, 0.0);
    }

    #[test]
    fn pre_columnar_scenarios_still_deserialize() {
        // Old reports recorded a frame-grain cache as a bare number and
        // had no adaptive counters; the alias + defaults must absorb
        // that, and a plain `0.75` must land as `Some(0.75)`.
        let json = r#"{
            "single_thread_uncached": {"wall_ms": 1.0, "draws_per_sec": 1e6},
            "parallel_memoized": {"wall_ms": 0.5, "draws_per_sec": 2e6},
            "speedup": 2.0,
            "cache_hit_rate": 0.75,
            "frame_cache_hit_rate": 0.25
        }"#;
        let s: Scenario = serde_json::from_str(json).unwrap();
        assert_eq!(s.cache_hit_rate, Some(0.75));
        assert_eq!(s.batch_cache_hit_rate, Some(0.25));
        assert_eq!(s.bypassed, 0);
        assert_eq!(s.auto_disables, 0);
        assert_eq!(s.reprobes, 0);
    }

    #[test]
    fn unengaged_caches_serialize_as_null() {
        let mut s = sample_report().workload_sim;
        s.cache_hit_rate = None;
        s.batch_cache_hit_rate = None;
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"cache_hit_rate\":null"));
        assert!(json.contains("\"batch_cache_hit_rate\":null"));
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cache_hit_rate, None);
    }

    #[test]
    fn reports_without_raw_overheads_or_bakeoff_still_deserialize() {
        // Committed BENCH files from before the clamp/bake-off lack the
        // fields; `#[serde(default)]` must absorb that.
        let json = serde_json::to_string(&sample_report()).unwrap();
        let stripped = json
            .replace("\"metrics_overhead_raw_pct\":-0.5,", "")
            .replace("\"trace_overhead_raw_pct\":1.25,", "")
            .replace("\"telemetry_overhead_raw_pct\":0.75,", "");
        let stripped = {
            // Drop the bakeoff array wholesale.
            let start = stripped.find(",\"bakeoff\":").unwrap();
            let end = stripped[start..].find(']').unwrap() + start + 1;
            format!("{}{}", &stripped[..start], &stripped[end..])
        };
        assert!(!stripped.contains("raw_pct") && !stripped.contains("bakeoff"));
        let back: Report = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.metrics_overhead_raw_pct, 0.0);
        assert_eq!(back.trace_overhead_raw_pct, 0.0);
        assert!(back.bakeoff.is_empty());
    }

    #[test]
    fn back_to_back_scenario_stats_are_never_identical_when_nonzero() {
        // Satellite of the shared-stats-simulator fix: two consecutive
        // scenario stats passes over the same workload must publish
        // *different* deltas (cold pass vs warm pipeline), never an
        // identical transcript.
        let workload = GameProfile::shooter("stats-regression")
            .frames(6)
            .draws_per_frame(60)
            .build(5)
            .generate();
        let sim = Simulator::new(ArchConfig::baseline());

        let before = sim.cache_stats();
        sim.simulate_workload(&workload).expect("simulate");
        let first = sim.cache_stats().delta(&before);

        let before = sim.cache_stats();
        Subsetter::new(SubsetConfig::default())
            .run(&workload, &sim)
            .expect("pipeline");
        let second = sim.cache_stats().delta(&before);

        assert!(
            first.hits + first.misses + first.bypassed > 0,
            "first scenario saw no cache traffic"
        );
        assert!(
            second.hits + second.misses + second.bypassed > 0,
            "second scenario saw no cache traffic"
        );
        assert_ne!(
            first, second,
            "back-to-back scenarios published identical nonzero cache stats"
        );
    }

    #[test]
    fn bakeoff_covers_every_backend_and_profile_with_finite_scores() {
        // Tiny workload — the real sizes live in collect_bakeoff(); this
        // exercises the exact collection path.
        let scores = bakeoff_scores(3, 40);
        assert_eq!(scores.len(), 4 * 3);
        for s in &scores {
            assert!(
                s.prediction_error.is_finite() && s.prediction_error >= 0.0,
                "{}/{}",
                s.backend,
                s.profile
            );
            assert!(
                (0.0..=1.0).contains(&s.efficiency),
                "{}/{}",
                s.backend,
                s.profile
            );
            assert!(
                (0.0..=1.0).contains(&s.outlier_fraction),
                "{}/{}",
                s.backend,
                s.profile
            );
        }
        let mut names: Vec<&str> = scores.iter().map(|s| s.backend.as_str()).collect();
        names.dedup();
        assert_eq!(
            names,
            ["threshold", "kmeans", "stratified", "pca-agglo"].repeat(3)
        );
    }

    #[test]
    fn latency_digest_orders_percentiles_and_handles_empty() {
        let d = LatencyDigest::of(&[]);
        assert_eq!((d.count, d.mean_ns, d.max_ns), (0, 0.0, 0));

        // 1..=100 in shuffled order: the digest must sort first.
        let mut samples: Vec<u64> = (1..=100).rev().collect();
        samples.swap(3, 77);
        let d = LatencyDigest::of(&samples);
        assert_eq!(d.count, 100);
        assert_eq!(d.mean_ns, 50.5);
        assert_eq!(d.max_ns, 100);
        assert!(d.p50_ns <= d.p90_ns && d.p90_ns <= d.p99_ns && d.p99_ns <= d.max_ns);
        assert_eq!(d.p50_ns, 51); // round(0.5 * 99) = 50 → sorted[50]
        assert_eq!(d.p99_ns, 99);
    }

    #[test]
    fn serve_replay_scenario_collects_on_a_tiny_workload() {
        // Tiny stand-in for the bench workload: the exact collection
        // path, scaled down.
        let workload = GameProfile::racing("serve-bench")
            .frames(9)
            .draws_per_frame(30)
            .build(7)
            .generate();
        let s = collect_serve_replay(&workload);
        assert_eq!(s.sessions, SERVE_SESSIONS);
        assert_eq!(s.chunk_frames, SERVE_CHUNK_FRAMES);
        assert_eq!(s.frames_per_session, 9);
        // 9 frames fit one 16-frame chunk: one ingest per session.
        assert_eq!(s.ingest_latency.count, SERVE_SESSIONS);
        assert!(s.sessions_per_sec > 0.0 && s.frames_per_sec > 0.0);
        assert!(s.ingest_latency.mean_ns > 0.0);
    }

    #[test]
    fn reports_without_telemetry_overhead_still_deserialize() {
        // Committed BENCH files from before the telemetry layer lack the
        // fields; `#[serde(default)]` must absorb that.
        let json = serde_json::to_string(&sample_report()).unwrap();
        let stripped = json
            .replace("\"telemetry_overhead_pct\":0.75,", "")
            .replace("\"telemetry_overhead_raw_pct\":0.75,", "");
        assert!(!stripped.contains("telemetry_overhead"));
        let back: Report = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.telemetry_overhead_pct, 0.0);
        assert_eq!(back.telemetry_overhead_raw_pct, 0.0);
    }

    #[test]
    fn rolling_p99_stays_within_a_factor_of_two_of_the_exact_digest() {
        // Acceptance bound of the telemetry layer: rolling percentiles
        // are bucketed (power-of-two bucket upper bounds), so a
        // session's rolling p99 ingest latency must land in
        // [exact max, 2 * exact max). `LatencyDigest::of` over the
        // session's own `ingest_ns` samples is the exact reference — at
        // these sample counts p99 *is* the max (rank == count).
        let workload = GameProfile::shooter("telemetry-tolerance")
            .frames(12)
            .draws_per_frame(40)
            .build(3)
            .generate();
        let sessions = 3;
        let options = ReplayOptions {
            sessions,
            chunk_frames: 4,
            telemetry: Some(TelemetryOptions {
                interval: Duration::ZERO,
                capacity: 64,
                rolling_windows: 64,
                slo: None,
            }),
        };
        let outcome =
            replay(&workload, &ServeConfig::default(), &options).expect("telemetry replay");
        let telemetry = outcome
            .telemetry
            .as_ref()
            .expect("telemetry-enabled replay");
        let last = telemetry.windows.last().expect("at least the final window");
        let chunks = outcome.ingest_ns.len() / sessions;
        assert_eq!(chunks, 3, "12 frames in 4-frame chunks");
        for (s, id) in outcome.session_ids.iter().enumerate() {
            // Session s's exact samples: each chunk round pushes one
            // latency per session, in session order.
            let samples: Vec<u64> = (0..chunks)
                .map(|chunk| outcome.ingest_ns[chunk * sessions + s])
                .collect();
            let exact = LatencyDigest::of(&samples);
            assert!(exact.max_ns > 0, "{id} never timed an ingest");
            // Rolling digests merge the last `rolling_windows` windows,
            // which here is every window — the whole run.
            let key = format!("serve.session.ingest_ns{{session=\"{id}\"}}");
            let rolling = last
                .rolling
                .get(&key)
                .unwrap_or_else(|| panic!("no rolling digest for {key} in the final window"));
            assert_eq!(rolling.count, chunks as u64, "{key}");
            assert!(
                rolling.p99_ns >= exact.max_ns && rolling.p99_ns < 2 * exact.max_ns,
                "{key}: rolling p99 {} outside [{}, {}) — the documented \
                 factor-of-two bucket tolerance",
                rolling.p99_ns,
                exact.max_ns,
                2 * exact.max_ns,
            );
            assert!(rolling.p50_ns <= rolling.p90_ns && rolling.p90_ns <= rolling.p99_ns);
        }
    }

    #[test]
    fn reports_without_serve_replay_still_deserialize() {
        let json = serde_json::to_string(&sample_report()).unwrap();
        let start = json.find(",\"serve_replay\":").unwrap();
        let stripped = format!("{}{}", &json[..start], &json[json.len() - 1..]);
        assert!(!stripped.contains("serve_replay"));
        let back: Report = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.serve_replay, None);
    }

    #[test]
    fn reports_without_serve_net_still_deserialize() {
        let json = serde_json::to_string(&sample_report()).unwrap();
        let start = json.find(",\"serve_net\":").unwrap();
        let stripped = format!("{}{}", &json[..start], &json[json.len() - 1..]);
        assert!(!stripped.contains("serve_net"));
        let back: Report = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.serve_net, None);
        assert!(back.serve_replay.is_some(), "only serve_net was stripped");
    }

    #[test]
    fn serve_net_scenario_measures_the_wire_path() {
        let workload = GameProfile::shooter("bench-net")
            .frames(9)
            .draws_per_frame(30)
            .build(11)
            .generate();
        let baseline = collect_serve_replay(&workload);
        let s = collect_serve_net(&workload, &baseline);
        assert_eq!(s.sessions, SERVE_SESSIONS);
        assert_eq!(s.chunk_frames, SERVE_CHUNK_FRAMES);
        assert_eq!(s.frames_per_session, 9);
        // 9 frames fit one 16-frame chunk: one wire round-trip per session.
        assert_eq!(s.wire_latency.count, SERVE_SESSIONS);
        assert!(s.frames_per_sec > 0.0);
        assert!(s.wire_latency.mean_ns > 0.0);
        assert!(
            s.wire_overhead_ratio > 0.0,
            "a real baseline yields a real overhead ratio"
        );
    }

    #[test]
    fn timing_helpers_return_finite_times() {
        let t = best_ms(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            2,
        );
        assert!(t.is_finite() && t >= 0.0);
        let t = median_ms(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            3,
        );
        assert!(t.is_finite() && t >= 0.0);
    }
}
