//! E6 — Figure: shader-vector phase timelines of the shooter series.
//!
//! The paper shows that phases exist in each BioShock-series game: frame
//! intervals characterised by shader vectors repeat, so a small set of
//! representative intervals covers the trace. This prints each game's phase
//! timeline (one letter per interval) plus coverage statistics.

use subset3d_bench::{header, pct};
use subset3d_core::{PhaseDetector, PhasePattern, Table};
use subset3d_trace::gen::bioshock_like_series;

fn phase_letter(id: usize) -> char {
    let alphabet = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    alphabet[id % alphabet.len()] as char
}

fn main() {
    header(
        "E6",
        "phase timelines of the shooter series (paper: phases exist in every game)",
    );
    let series = bioshock_like_series();
    let detector = PhaseDetector::new(10).with_similarity(0.85);

    let mut table = Table::new(vec![
        "game",
        "intervals",
        "phases",
        "recurring",
        "repeat coverage",
        "compression",
    ]);
    for workload in &series {
        let analysis = detector.detect(workload).expect("detect");
        let pattern = PhasePattern::of(&analysis);
        let timeline: String = analysis
            .sequence()
            .iter()
            .map(|&p| phase_letter(p))
            .collect();
        println!("{:<16} {}", workload.name, timeline);
        table.row(vec![
            workload.name.clone(),
            analysis.intervals.len().to_string(),
            analysis.phase_count().to_string(),
            pattern.recurring_phases.to_string(),
            pct(analysis.repeat_coverage()),
            format!("{:.2}", analysis.compression()),
        ]);
        assert!(
            pattern.has_recurrence(),
            "{}: expected recurring phases",
            workload.name
        );
    }
    println!();
    println!("{}", table.render());
    println!("every series title shows phases that leave and return (letters recur)");
}
