//! E3 — Figure: the error-vs-efficiency trade-off.
//!
//! Sweeping the clustering threshold traces the operating curve the paper's
//! chosen point (1.0 % error @ 65.8 % efficiency) sits on.

use subset3d_bench::{header, pct};
use subset3d_core::{ClusterMethod, SubsetConfig, Subsetter, Table};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

fn main() {
    header(
        "E3",
        "prediction error vs clustering efficiency (threshold sweep)",
    );
    let workload = GameProfile::shooter("shock-1")
        .frames(60)
        .draws_per_frame(1400)
        .build(CORPUS_SEED)
        .generate();
    let sim = Simulator::new(ArchConfig::baseline());

    let mut table = Table::new(vec!["threshold", "efficiency", "pred. error", "outliers"]);
    for &distance in &[0.2, 0.4, 0.6, 0.8, 1.0, 1.05, 1.2, 1.5, 2.0, 2.5, 3.0] {
        let config =
            SubsetConfig::default().with_cluster_method(ClusterMethod::Threshold { distance });
        let outcome = Subsetter::new(config)
            .run(&workload, &sim)
            .expect("pipeline");
        table.row(vec![
            format!("{distance:.2}"),
            pct(outcome.evaluation.mean_efficiency()),
            pct(outcome.evaluation.mean_prediction_error()),
            pct(outcome.evaluation.outlier_fraction()),
        ]);
    }
    println!("{}", table.render());
    println!("paper operating point: 65.8% efficiency at 1.0% error");
}
