//! E19 — Use-case figure: subset-driven design-space exploration.
//!
//! The closing loop of pathfinding: enumerate a grid of candidate designs,
//! position each in the (area, performance) plane, and extract the Pareto
//! front — once from full-trace simulation and once from subset replay.
//! The fronts must agree for subsets to be a sound pathfinding substrate.

use subset3d_bench::{header, ms, run_default_pipeline};
use subset3d_core::Table;
use subset3d_gpusim::{pareto_front, ArchConfig, AreaModel, DesignPoint, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

/// A 12-point design grid: EU count × memory width.
fn design_grid() -> Vec<ArchConfig> {
    let mut grid = Vec::new();
    for &eu in &[12u32, 24, 36, 48] {
        for &bus in &[32u32, 48, 96] {
            let scale = eu / 12;
            grid.push(
                ArchConfig::baseline()
                    .to_builder()
                    .name(format!("eu{eu}-bus{bus}"))
                    .eu_count(eu)
                    .tex_rate(8 * scale)
                    .rop_rate(4 * scale)
                    .raster_rate(8 * scale)
                    .mem_bus_bytes(bus)
                    .build(),
            );
        }
    }
    grid
}

fn main() {
    header(
        "E19",
        "design-space exploration: Pareto front from subsets vs full trace",
    );
    let workload = GameProfile::shooter("shock-1")
        .frames(80)
        .draws_per_frame(900)
        .build(CORPUS_SEED)
        .generate();
    let outcome = run_default_pipeline(&workload);
    let area_model = AreaModel::default();
    let grid = design_grid();

    let mut parent_points = Vec::new();
    let mut subset_points = Vec::new();
    for config in &grid {
        let sim = Simulator::new(config.clone());
        let area = area_model.area_mm2(config);
        parent_points.push(DesignPoint {
            name: config.name.clone(),
            area_mm2: area,
            time_ns: sim.simulate_workload(&workload).expect("sim").total_ns,
        });
        subset_points.push(DesignPoint {
            name: config.name.clone(),
            area_mm2: area,
            time_ns: outcome.subset.replay(&workload, &sim).expect("replay"),
        });
    }

    let parent_front = pareto_front(&parent_points);
    let subset_front = pareto_front(&subset_points);

    let mut table = Table::new(vec![
        "design",
        "area mm²",
        "full-trace time",
        "subset estimate",
        "on front (full)",
        "on front (subset)",
    ]);
    for (i, config) in grid.iter().enumerate() {
        table.row(vec![
            config.name.clone(),
            format!("{:.0}", parent_points[i].area_mm2),
            ms(parent_points[i].time_ns),
            ms(subset_points[i].time_ns),
            if parent_front.contains(&i) {
                "*".into()
            } else {
                String::new()
            },
            if subset_front.contains(&i) {
                "*".into()
            } else {
                String::new()
            },
        ]);
    }
    println!("{}", table.render());

    let parent_names: Vec<&str> = parent_front
        .iter()
        .map(|&i| parent_points[i].name.as_str())
        .collect();
    let subset_names: Vec<&str> = subset_front
        .iter()
        .map(|&i| subset_points[i].name.as_str())
        .collect();
    println!("full-trace Pareto front: {}", parent_names.join(" → "));
    println!("subset     Pareto front: {}", subset_names.join(" → "));
    let agree = parent_names == subset_names;
    println!(
        "fronts {} — subset replay drives the same design decisions at {:.3}% of the cost",
        if agree { "agree exactly" } else { "differ" },
        outcome.subset.draw_fraction() * 100.0
    );
}
