//! E18 — Extension figure: forward vs deferred renderers under frequency
//! scaling.
//!
//! Deferred shading writes a fat HDR G-buffer, pushing frames toward the
//! memory domain; its core-frequency-scaling curve must flatten earlier
//! than the forward renderer's — and subsets must track both shapes.

use subset3d_bench::{header, run_default_pipeline};
use subset3d_core::{frequency_scaling_validation, Table};
use subset3d_gpusim::{ArchConfig, FrequencySweep};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

fn main() {
    header(
        "E18",
        "forward vs deferred rendering under core-frequency scaling",
    );
    let forward = GameProfile::shooter("forward")
        .frames(60)
        .draws_per_frame(900)
        .build(CORPUS_SEED)
        .generate();
    let deferred = GameProfile::shooter("deferred")
        .frames(60)
        .draws_per_frame(900)
        .deferred(true)
        .build(CORPUS_SEED)
        .generate();
    let sweep = FrequencySweep::standard();
    let base = ArchConfig::baseline();

    let mut table = Table::new(vec![
        "core MHz",
        "forward improvement",
        "deferred improvement",
    ]);
    let mut curves = Vec::new();
    let mut correlations = Vec::new();
    for workload in [&forward, &deferred] {
        let outcome = run_default_pipeline(workload);
        let v = frequency_scaling_validation(workload, &outcome.subset, &base, &sweep)
            .expect("validation");
        correlations.push((workload.name.clone(), v.correlation));
        curves.push(v.parent_improvement);
    }
    for (i, &mhz) in sweep.points_mhz().iter().enumerate() {
        table.row(vec![
            format!("{mhz:.0}"),
            format!("{:.4}x", curves[0][i]),
            format!("{:.4}x", curves[1][i]),
        ]);
    }
    println!("{}", table.render());
    let last = sweep.len() - 1;
    println!(
        "top-of-range speedup: forward {:.2}x vs deferred {:.2}x — the G-buffer",
        curves[0][last], curves[1][last]
    );
    println!("bandwidth does not scale with core clock, so deferred flattens earlier");
    for (name, r) in &correlations {
        println!("subset tracks {name}: r = {r:.4}");
    }
    assert!(
        curves[1][last] < curves[0][last],
        "deferred must flatten earlier than forward"
    );
}
