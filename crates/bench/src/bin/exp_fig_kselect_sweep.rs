//! E5 — Ablation figure: cluster-count selection strategy.
//!
//! Compares the production threshold clustering against fixed-k k-means
//! and BIC-selected k-means at comparable efficiencies, isolating the
//! paper's design choice of letting the cluster count emerge per frame.

use subset3d_bench::{header, pct};
use subset3d_cluster::{adjusted_rand_index, Clustering};
use subset3d_core::{ClusterMethod, FrameClustering, SubsetConfig, Subsetter, Table};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

/// Rebuilds a label vector from a frame clustering so partitions from
/// different methods can be compared with the adjusted Rand index.
fn to_clustering(fc: &FrameClustering) -> Clustering {
    let mut assignments = vec![0usize; fc.draw_count];
    for (ci, cluster) in fc.clusters.iter().enumerate() {
        for &m in &cluster.members {
            assignments[m] = ci;
        }
    }
    Clustering::new(assignments, vec![Vec::new(); fc.clusters.len().max(1)])
}

fn main() {
    header(
        "E5",
        "cluster-count selection ablation (threshold vs fixed-k vs BIC)",
    );
    // Smaller frames keep BIC k-means tractable; the comparison is the
    // point, not corpus scale.
    let workload = GameProfile::shooter("shock-1")
        .frames(24)
        .draws_per_frame(400)
        .build(CORPUS_SEED)
        .generate();
    let sim = Simulator::new(ArchConfig::baseline());

    let methods: Vec<(String, ClusterMethod)> = vec![
        (
            "threshold(1.05)".into(),
            ClusterMethod::Threshold { distance: 1.05 },
        ),
        ("kmeans(k=32)".into(), ClusterMethod::KMeansFixed { k: 32 }),
        ("kmeans(k=64)".into(), ClusterMethod::KMeansFixed { k: 64 }),
        (
            "kmeans(k=128)".into(),
            ClusterMethod::KMeansFixed { k: 128 },
        ),
        (
            "kmeans-bic(max 160)".into(),
            ClusterMethod::KMeansBic { max_k: 160 },
        ),
    ];

    // Reference partitions: the production threshold clustering per frame.
    let reference = Subsetter::new(
        SubsetConfig::default().with_cluster_method(ClusterMethod::Threshold { distance: 1.05 }),
    )
    .run(&workload, &sim)
    .expect("reference pipeline");

    let mut table = Table::new(vec![
        "method",
        "efficiency",
        "pred. error",
        "outliers",
        "ARI vs threshold",
    ]);
    for (name, method) in methods {
        let config = SubsetConfig::default().with_cluster_method(method);
        let outcome = Subsetter::new(config)
            .run(&workload, &sim)
            .expect("pipeline");
        // Mean per-frame adjusted Rand index against the reference: do the
        // methods even group the same draws together?
        let ari = subset3d_stats::mean(
            &outcome
                .clusterings
                .iter()
                .zip(&reference.clusterings)
                .map(|(a, b)| adjusted_rand_index(&to_clustering(a), &to_clustering(b)))
                .collect::<Vec<_>>(),
        );
        table.row(vec![
            name,
            pct(outcome.evaluation.mean_efficiency()),
            pct(outcome.evaluation.mean_prediction_error()),
            pct(outcome.evaluation.outlier_fraction()),
            format!("{ari:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!("design choice: per-frame threshold clustering dominates fixed-k at equal");
    println!("efficiency, and the partitions genuinely differ (ARI well below 1)");
}
