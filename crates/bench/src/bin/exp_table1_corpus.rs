//! E1 — Table 1: the workload corpus.
//!
//! The paper evaluates on 717 frames encompassing 828K draw-calls across a
//! set of commercial games. This regenerates the corpus-inventory table for
//! the synthetic equivalent.

use subset3d_bench::header;
use subset3d_core::Table;
use subset3d_trace::gen::standard_corpus;

fn main() {
    header("E1", "workload corpus (paper: 717 frames, 828K draws)");
    let corpus = standard_corpus();
    let mut table = Table::new(vec![
        "game",
        "frames",
        "draws",
        "draws/frame",
        "shaders",
        "textures",
        "states",
    ]);
    let mut total_frames = 0usize;
    let mut total_draws = 0usize;
    for workload in &corpus {
        let s = workload.summary();
        total_frames += s.frames;
        total_draws += s.draws;
        table.row(vec![
            s.name.clone(),
            s.frames.to_string(),
            s.draws.to_string(),
            format!("{:.0}", s.draws_per_frame.mean),
            s.unique_shaders.to_string(),
            s.unique_textures.to_string(),
            s.unique_states.to_string(),
        ]);
    }
    table.row(vec![
        "TOTAL".to_string(),
        total_frames.to_string(),
        total_draws.to_string(),
        format!("{:.0}", total_draws as f64 / total_frames as f64),
        String::new(),
        String::new(),
        String::new(),
    ]);
    println!("{}", table.render());
    println!(
        "paper corpus: 717 frames, 828000 draws | reproduced: {total_frames} frames, {total_draws} draws"
    );
}
