//! E12 — Ablation figure: per-frame vs workload-global clustering.
//!
//! The paper clusters within frames. Clustering the whole trace at once
//! exploits cross-frame redundancy for much higher efficiency, trading some
//! per-frame fidelity. This quantifies that trade-off on one game.

use subset3d_bench::{header, pct};
use subset3d_core::{
    cluster_frame, cluster_workload_global, outlier_fraction, predict_frame,
    predict_workload_global, ClusterMethod, SubsetConfig, Table,
};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

fn main() {
    header("E12", "per-frame vs workload-global clustering (extension)");
    let workload = GameProfile::shooter("shock-1")
        .frames(60)
        .draws_per_frame(700)
        .build(CORPUS_SEED)
        .generate();
    let sim = Simulator::new(ArchConfig::baseline());
    let costs = sim.simulate_workload(&workload).expect("sim");

    let mut table = Table::new(vec![
        "scope",
        "threshold",
        "simulations",
        "efficiency",
        "frame error",
        "outliers",
    ]);
    for &distance in &[0.6, 1.05, 1.5] {
        let config =
            SubsetConfig::default().with_cluster_method(ClusterMethod::Threshold { distance });

        // Per-frame (the paper's scope).
        let mut sims = 0usize;
        let mut predictions = Vec::new();
        for (frame, cost) in workload.frames().iter().zip(&costs.frames) {
            let clustering = cluster_frame(frame, &workload, &config);
            sims += clustering.cluster_count();
            predictions.push(predict_frame(&clustering, cost));
        }
        let frame_errors: Vec<f64> = predictions.iter().map(|p| p.error()).collect();
        table.row(vec![
            "per-frame".to_string(),
            format!("{distance:.2}"),
            sims.to_string(),
            pct(1.0 - sims as f64 / workload.total_draws() as f64),
            pct(subset3d_stats::mean(&frame_errors)),
            pct(outlier_fraction(&predictions)),
        ]);

        // Workload-global.
        let global = cluster_workload_global(&workload, &config);
        let prediction = predict_workload_global(&global, &costs);
        table.row(vec![
            "global".to_string(),
            format!("{distance:.2}"),
            global.cluster_count().to_string(),
            pct(global.efficiency()),
            pct(prediction.mean_frame_error()),
            pct(prediction.outlier_fraction),
        ]);
    }
    println!("{}", table.render());
    println!("global clustering exploits cross-frame redundancy: far fewer simulations");
    println!("at the same threshold, for a modest frame-error increase");
}
