//! E16 — Extension figure: subset budget vs fidelity frontier.
//!
//! The pipeline has two budget knobs — clustering threshold (draws kept per
//! frame) and frames per phase (frames kept per phase). This experiment
//! sweeps both jointly and maps the Pareto frontier of subset size vs
//! replay-estimate error, answering the practical question "how small can a
//! subset be at a given fidelity target?".

use subset3d_bench::{header, pct, pct3};
use subset3d_core::{ClusterMethod, SubsetConfig, Subsetter, Table};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

fn main() {
    header("E16", "subset budget vs fidelity frontier");
    let workload = GameProfile::shooter("shock-1")
        .frames(120)
        .draws_per_frame(1000)
        .build(CORPUS_SEED)
        .generate();
    let sim = Simulator::new(ArchConfig::baseline());
    let actual = sim.simulate_workload(&workload).expect("sim").total_ns;

    let mut points = Vec::new();
    for &distance in &[0.8, 1.02, 1.5, 2.0] {
        for &fpp in &[1usize, 2, 4] {
            let config = SubsetConfig::default()
                .with_cluster_method(ClusterMethod::Threshold { distance })
                .with_frames_per_phase(fpp);
            let outcome = Subsetter::new(config)
                .run(&workload, &sim)
                .expect("pipeline");
            let estimate = outcome.subset.replay(&workload, &sim).expect("replay");
            points.push((
                distance,
                fpp,
                outcome.subset.draw_fraction(),
                (estimate - actual).abs() / actual,
            ));
        }
    }
    points.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());

    let mut table = Table::new(vec![
        "threshold",
        "frames/phase",
        "subset size",
        "replay err",
        "pareto",
    ]);
    // A point is Pareto-optimal when no other point is both smaller and
    // more accurate.
    let mut best_err = f64::INFINITY;
    for &(distance, fpp, size, err) in &points {
        let pareto = err < best_err;
        if pareto {
            best_err = err;
        }
        table.row(vec![
            format!("{distance:.2}"),
            fpp.to_string(),
            pct3(size),
            pct(err),
            if pareto {
                "*".to_string()
            } else {
                String::new()
            },
        ]);
    }
    println!("{}", table.render());
    println!("(* = Pareto-optimal size/error trade-off, scanning smallest-first)");
}
