//! E2 — Table 2: per-game clustering quality.
//!
//! Paper targets (corpus averages): prediction error ≈ 1.0 %, clustering
//! efficiency ≈ 65.8 %, cluster outliers ≈ 3.0 %.

use subset3d_bench::{header, pct, run_default_pipeline};
use subset3d_core::Table;
use subset3d_trace::gen::standard_corpus;

fn main() {
    header(
        "E2",
        "per-game draw-call clustering (paper: 1.0% error @ 65.8% efficiency, 3.0% outliers)",
    );
    let corpus = standard_corpus();
    let mut table = Table::new(vec!["game", "efficiency", "pred. error", "outliers"]);
    let mut eff = Vec::new();
    let mut err = Vec::new();
    let mut outl = Vec::new();
    for workload in &corpus {
        let outcome = run_default_pipeline(workload);
        let e = outcome.evaluation.mean_efficiency();
        let p = outcome.evaluation.mean_prediction_error();
        let o = outcome.evaluation.outlier_fraction();
        eff.push(e);
        err.push(p);
        outl.push(o);
        table.row(vec![workload.name.clone(), pct(e), pct(p), pct(o)]);
    }
    table.row(vec![
        "AVERAGE".to_string(),
        pct(subset3d_stats::mean(&eff)),
        pct(subset3d_stats::mean(&err)),
        pct(subset3d_stats::mean(&outl)),
    ]);
    println!("{}", table.render());
    println!("paper averages: efficiency 65.8%, error 1.0%, outliers 3.0%");
}
