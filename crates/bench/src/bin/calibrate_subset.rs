//! Calibration sweep for the subset-extraction stage.
//!
//! Not a paper artefact — sweeps (interval length, phase similarity, frames
//! per phase) and reports subset size and replay estimate error on the
//! hardest corpus games, to pick pipeline defaults.

use subset3d_bench::{header, pct, pct3};
use subset3d_core::{SubsetConfig, Subsetter, Table};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};
use subset3d_trace::Workload;

fn main() {
    header("CAL-SUBSET", "subset-stage parameter sweep");
    let games: Vec<Workload> = vec![
        GameProfile::rts("stratcraft")
            .frames(110)
            .draws_per_frame(1000)
            .build(CORPUS_SEED.wrapping_add(3))
            .generate(),
        GameProfile::shooter("shock-infinite")
            .frames(140)
            .draws_per_frame(1200)
            .build(CORPUS_SEED.wrapping_add(2))
            .generate(),
    ];
    let sim = Simulator::new(ArchConfig::baseline());

    let mut table = Table::new(vec![
        "interval",
        "similarity",
        "frames/phase",
        "game",
        "size",
        "replay err",
    ]);
    for &interval in &[4, 6, 10] {
        for &similarity in &[0.9, 0.95, 1.0] {
            for &fpp in &[1, 2, 3] {
                for w in &games {
                    let config = SubsetConfig::default()
                        .with_interval_len(interval)
                        .with_phase_similarity(similarity)
                        .with_frames_per_phase(fpp);
                    let outcome = Subsetter::new(config).run(w, &sim).expect("pipeline");
                    let actual = sim.simulate_workload(w).expect("sim").total_ns;
                    let estimate = outcome.subset.replay(w, &sim).expect("replay");
                    table.row(vec![
                        interval.to_string(),
                        format!("{similarity:.2}"),
                        fpp.to_string(),
                        w.name.clone(),
                        pct3(outcome.subset.draw_fraction()),
                        pct((estimate - actual).abs() / actual),
                    ]);
                }
            }
        }
    }
    println!("{}", table.render());
}
