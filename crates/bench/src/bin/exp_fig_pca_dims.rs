//! E13 — Extension figure: how many feature dimensions matter?
//!
//! Projects the per-frame MAI features onto their top-k principal
//! components before clustering and tracks the operating point as k drops,
//! plus the variance captured by each k.

use subset3d_bench::{header, pct};
use subset3d_core::{SubsetConfig, Subsetter, Table};
use subset3d_features::{extract_frame_features, Normalization, Pca};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

fn main() {
    header("E13", "PCA dimensionality of the MAI feature space");
    let workload = GameProfile::shooter("shock-1")
        .frames(40)
        .draws_per_frame(1000)
        .build(CORPUS_SEED)
        .generate();
    let sim = Simulator::new(ArchConfig::baseline());

    // Variance spectrum of one representative frame.
    let config = SubsetConfig::default();
    let mut matrix =
        extract_frame_features(&workload.frames()[20], &workload, config.features.clone());
    matrix.normalize(Normalization::ZScore);
    matrix.apply_cost_weights();
    let full_pca = Pca::fit(&matrix, matrix.cols()).expect("pca");
    let total: f64 = full_pca.explained_variance().iter().sum();
    print!("variance captured by top-k components: ");
    let mut acc = 0.0;
    for (k, v) in full_pca.explained_variance().iter().enumerate().take(8) {
        acc += v;
        print!("k={} {:.0}%  ", k + 1, acc / total * 100.0);
    }
    println!("\n");

    let mut table = Table::new(vec!["dims", "efficiency", "pred. error", "outliers"]);
    let mut run = |label: String, config: SubsetConfig| {
        let outcome = Subsetter::new(config)
            .run(&workload, &sim)
            .expect("pipeline");
        table.row(vec![
            label,
            pct(outcome.evaluation.mean_efficiency()),
            pct(outcome.evaluation.mean_prediction_error()),
            pct(outcome.evaluation.outlier_fraction()),
        ]);
    };
    run("full (19)".to_string(), SubsetConfig::default());
    for k in [12usize, 8, 6, 4, 2] {
        run(
            format!("pca {k}"),
            SubsetConfig::default().with_pca(Some(k)),
        );
    }
    println!("{}", table.render());
    println!("a handful of principal directions carries most of the clustering signal");
}
