//! E10 — Use-case figure: architecture pathfinding with subsets.
//!
//! The motivation of the whole methodology: rank candidate GPU designs by
//! replaying only the subset and check that the ranking matches full-trace
//! simulation.

use subset3d_bench::{header, ms, run_default_pipeline};
use subset3d_core::{pathfinding_rank_validation, Table};
use subset3d_gpusim::ArchConfig;
use subset3d_trace::gen::standard_corpus;

fn main() {
    header("E10", "design-point ranking: parent vs subset");
    let corpus = standard_corpus();
    let candidates = ArchConfig::pathfinding_candidates();

    // Per-game validation fans out over the shared pool; results come back
    // in corpus order, so the printed figure is identical at any thread
    // count.
    let per_game = subset3d_exec::par_map_indexed(&corpus, |_, workload| {
        let outcome = run_default_pipeline(workload);
        pathfinding_rank_validation(workload, &outcome.subset, &candidates).expect("validation")
    });

    // Aggregate corpus-level times per candidate.
    let mut parent_total = vec![0.0f64; candidates.len()];
    let mut subset_total = vec![0.0f64; candidates.len()];
    let mut agreements = Vec::new();
    for (workload, (parent, estimate, agreement)) in corpus.iter().zip(&per_game) {
        for i in 0..candidates.len() {
            parent_total[i] += parent[i];
            subset_total[i] += estimate[i];
        }
        agreements.push(*agreement);
        println!(
            "{}: per-game rank agreement {:.0}%",
            workload.name,
            agreement * 100.0
        );
    }
    println!();

    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| parent_total[a].partial_cmp(&parent_total[b]).unwrap());
    let mut table = Table::new(vec![
        "rank (parent)",
        "design point",
        "parent time",
        "subset estimate",
        "estimate error",
    ]);
    for (rank, &i) in order.iter().enumerate() {
        let err = (subset_total[i] - parent_total[i]).abs() / parent_total[i];
        table.row(vec![
            (rank + 1).to_string(),
            candidates[i].name.clone(),
            ms(parent_total[i]),
            ms(subset_total[i]),
            format!("{:.2}%", err * 100.0),
        ]);
    }
    println!("{}", table.render());

    let mut subset_order: Vec<usize> = (0..candidates.len()).collect();
    subset_order.sort_by(|&a, &b| subset_total[a].partial_cmp(&subset_total[b]).unwrap());
    let corpus_agreement = order
        .iter()
        .zip(&subset_order)
        .filter(|(a, b)| a == b)
        .count() as f64
        / order.len() as f64;
    println!(
        "corpus-level rank agreement: {:.0}% | mean per-game agreement: {:.0}%",
        corpus_agreement * 100.0,
        subset3d_stats::mean(&agreements) * 100.0
    );
}
