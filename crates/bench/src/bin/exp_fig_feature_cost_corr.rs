//! E17 — Characterisation figure: which MAI features predict draw cost?
//!
//! Per-feature Pearson correlation between the extracted feature value and
//! the simulated draw time across a full game — the empirical basis for
//! the cost weights used by the clustering (`FeatureKind::cost_weight`).

use subset3d_bench::header;
use subset3d_core::Table;
use subset3d_features::{extract_frame_features, FeatureKind};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

fn main() {
    header(
        "E17",
        "feature-to-cost correlation (basis of the cost weights)",
    );
    let workload = GameProfile::shooter("shock-1")
        .frames(40)
        .draws_per_frame(1000)
        .build(CORPUS_SEED)
        .generate();
    let sim = Simulator::new(ArchConfig::baseline());
    let cost = sim.simulate_workload(&workload).expect("sim");

    // One column per feature over every draw, plus log-time (costs are
    // heavy-tailed; correlation in log space matches the log-scaled
    // features).
    let kinds = FeatureKind::standard_set();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    let mut log_time = Vec::new();
    for (frame, frame_cost) in workload.frames().iter().zip(&cost.frames) {
        let matrix = extract_frame_features(frame, &workload, kinds.clone());
        for (row, draw_cost) in matrix.iter_rows().zip(&frame_cost.draws) {
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
            log_time.push(draw_cost.time_ns.max(1.0).ln());
        }
    }

    let mut rows: Vec<(FeatureKind, f64)> = kinds
        .iter()
        .zip(&columns)
        .map(|(&k, col)| (k, subset3d_stats::pearson(col, &log_time).unwrap_or(0.0)))
        .collect();
    rows.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());

    let mut table = Table::new(vec![
        "feature",
        "group",
        "|r| with log draw time",
        "cost weight",
    ]);
    for (kind, r) in &rows {
        table.row(vec![
            format!("{kind:?}"),
            format!("{:?}", kind.group()),
            format!("{:.3}", r.abs()),
            format!("{:.2}", kind.cost_weight()),
        ]);
    }
    println!("{}", table.render());
    println!("shaded pixels and coverage dominate univariate cost correlation,");
    println!("matching their top cost weights; geometry/shading features matter");
    println!("conditionally (for the minority of geometry- or ALU-bound draws),");
    println!("which univariate correlation under-reports — the E9 ablation shows");
    println!("their group-level contribution");
}
