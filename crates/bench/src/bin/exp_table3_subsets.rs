//! E7 — Table 3: extracted subset sizes.
//!
//! Combining phase representatives with cluster representatives produces
//! subsets below 1 % of the parent workload (the paper's headline subset
//! size), while the replayed subset still estimates parent time closely.

use subset3d_bench::{header, pct, pct3, run_default_pipeline};
use subset3d_core::Table;
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::standard_corpus;

fn main() {
    header("E7", "workload subsets (paper: < 1% of parent draws)");
    let corpus = standard_corpus();
    let sim = Simulator::new(ArchConfig::baseline());
    let mut table = Table::new(vec![
        "game",
        "parent draws",
        "subset draws",
        "subset size",
        "kept frames",
        "replay est. error",
    ]);
    let mut sizes = Vec::new();
    for workload in &corpus {
        let outcome = run_default_pipeline(workload);
        let subset = &outcome.subset;
        let actual = sim
            .simulate_workload(workload)
            .expect("parent sim")
            .total_ns;
        let estimate = subset.replay(workload, &sim).expect("replay");
        let replay_error = (estimate - actual).abs() / actual;
        sizes.push(subset.draw_fraction());
        table.row(vec![
            workload.name.clone(),
            workload.total_draws().to_string(),
            subset.selected_draw_count().to_string(),
            pct3(subset.draw_fraction()),
            format!("{}/{}", subset.frames().len(), workload.frames().len()),
            pct(replay_error),
        ]);
    }
    table.row(vec![
        "AVERAGE".to_string(),
        String::new(),
        String::new(),
        pct3(subset3d_stats::mean(&sizes)),
        String::new(),
        String::new(),
    ]);
    println!("{}", table.render());
    println!("paper: subsets are less than one percent of the parent workload");
}
