//! Pipeline throughput report: measures the effect of the shared
//! work-stealing executor and draw-cost memoization against a
//! single-thread, uncached baseline, and records both in
//! `BENCH_pipeline.json` at the repository root.
//!
//! Three scenarios, all on the same generated game trace:
//!
//! * **workload_sim** — one cold `simulate_workload` pass in the
//!   out-of-the-box configuration (`CacheMode::Auto`, default threads).
//!   Generated traces repeat a few thousand draw *shapes* across tens of
//!   thousands of draws, so shape-grain memoization pays even on a cold
//!   pass; if a stream ever stops repeating, the adaptive policy
//!   bypasses the cache and periodically re-probes;
//! * **iterated_sweep** — `SWEEP_PASSES` passes of the six-candidate
//!   pathfinding sweep through a `SweepSession`, the shape of the
//!   iterative pathfinding loop. Every pass after the first is served
//!   wholesale from the batch caches;
//! * **subsetting_pipeline** — clustering + evaluation end to end.
//!
//! Every scenario is also run single-threaded with memoization off (the
//! pre-executor behaviour); each timing is the best of three runs.
//!
//! Per-scenario cache statistics are deltas over each scenario's own
//! instrumented pass on a shared simulator, so back-to-back scenarios
//! report their actual (different) cache behaviour rather than an
//! identical fresh-run transcript.
//!
//! The report additionally measures the cost of `subset3d-obs` metric
//! recording and flight-mode event tracing (`metrics_overhead_pct` and
//! `trace_overhead_pct`: medians of five interleaved off/on pairs on the
//! workload_sim shape, clamped at zero with the signed medians kept in
//! `*_raw_pct`, budget < 2 %), embeds the `MetricsSnapshot` of an
//! instrumented sweep-plus-pipeline pass, and runs the backend bake-off:
//! every clustering methodology scored on prediction error, subsetting
//! efficiency and outlier fraction across the three game profiles. The
//! measurement code is shared with `bench_diff` via
//! [`subset3d_bench::report`].
//!
//! The **serve_replay** scenario streams the same workload through
//! concurrent `subset3d-serve` sessions in chunks, recording session and
//! frame throughput plus the per-chunk incremental-fit latency digest.
//! The **serve_net** scenario repeats the stream through the loopback
//! wire-protocol front-end and reports the per-chunk round-trip digest
//! relative to that in-process baseline.

use subset3d_bench::report::{
    best_timer, collect, Report, Scenario, BAKEOFF_DRAWS_PER_FRAME, BAKEOFF_FRAMES, OVERHEAD_REPS,
    RUNS,
};

fn rate(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{:.1}%", v * 100.0),
        None => "unused".to_string(),
    }
}

fn cache_summary(name: &str, s: &Scenario) {
    println!(
        "{name:<20} speedup {:.3} | shape cache {} | batch cache {} | \
         bypassed {} | auto-disables {} | reprobes {}",
        s.speedup,
        rate(s.cache_hit_rate),
        rate(s.batch_cache_hit_rate),
        s.bypassed,
        s.auto_disables,
        s.reprobes,
    );
}

fn main() {
    let report = collect(best_timer);
    println!(
        "bench_report: {} frames / {} draws, {} candidate configs, {} threads",
        report.workload_frames, report.workload_draws, report.sweep_candidates, report.threads,
    );
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("{json}");
    println!("wrote BENCH_pipeline.json (best-of-{RUNS} timings)");
    cache_summary("workload_sim", &report.workload_sim);
    cache_summary("iterated_sweep", &report.iterated_sweep);
    cache_summary("subsetting_pipeline", &report.subsetting_pipeline);
    // The serialized fields are clamped at zero (negative = scheduling
    // noise); the signed medians survive in the `*_raw_pct` fields.
    println!(
        "metrics overhead: {:.2}% | trace overhead (flight mode): {:.2}% \
         (medians of {OVERHEAD_REPS} interleaved off/on pairs, clamped at 0; \
         raw {:.2}% / {:.2}%)",
        report.metrics_overhead_pct,
        report.trace_overhead_pct,
        report.metrics_overhead_raw_pct,
        report.trace_overhead_raw_pct,
    );
    if let Some(s) = &report.serve_replay {
        println!(
            "serve_replay: {} sessions x {} frames ({}-frame chunks) | \
             {:.1} sessions/s | {:.0} frames/s | ingest p50 {:.3}ms p99 {:.3}ms",
            s.sessions,
            s.frames_per_session,
            s.chunk_frames,
            s.sessions_per_sec,
            s.frames_per_sec,
            s.ingest_latency.p50_ns as f64 / 1e6,
            s.ingest_latency.p99_ns as f64 / 1e6,
        );
    }
    if let Some(s) = &report.serve_net {
        println!(
            "serve_net: {} sessions x {} frames ({}-frame chunks over loopback TCP) | \
             {:.0} frames/s | wire p50 {:.3}ms p99 {:.3}ms | {:.2}x in-process ingest",
            s.sessions,
            s.frames_per_session,
            s.chunk_frames,
            s.frames_per_sec,
            s.wire_latency.p50_ns as f64 / 1e6,
            s.wire_latency.p99_ns as f64 / 1e6,
            s.wire_overhead_ratio,
        );
    }
    bakeoff_table(&report);
}

fn bakeoff_table(report: &Report) {
    println!(
        "\nbackend bake-off ({BAKEOFF_FRAMES} frames x {BAKEOFF_DRAWS_PER_FRAME} \
         draws per profile):"
    );
    println!(
        "{:<12} {:<9} {:>11} {:>11} {:>9}",
        "backend", "profile", "pred error", "efficiency", "outliers"
    );
    for s in &report.bakeoff {
        println!(
            "{:<12} {:<9} {:>10.2}% {:>10.1}% {:>8.1}%",
            s.backend,
            s.profile,
            s.prediction_error * 100.0,
            s.efficiency * 100.0,
            s.outlier_fraction * 100.0,
        );
    }
}
