//! Pipeline throughput report: measures the effect of the shared
//! work-stealing executor and draw-cost memoization against a
//! single-thread, uncached baseline, and records both in
//! `BENCH_pipeline.json` at the repository root.
//!
//! Three scenarios, all on the same generated game trace:
//!
//! * **workload_sim** — one cold `simulate_workload` pass in the
//!   out-of-the-box configuration (`CacheMode::Auto`, default threads).
//!   On a trace with little verbatim repetition the cache self-disables,
//!   so this mainly checks that memoization never costs more than a few
//!   percent when it cannot help;
//! * **iterated_sweep** — [`SWEEP_PASSES`] passes of the six-candidate
//!   pathfinding sweep through a [`SweepSession`], the shape of the
//!   iterative pathfinding loop. Every pass after the first is served
//!   wholesale from the frame caches;
//! * **subsetting_pipeline** — clustering + evaluation end to end.
//!
//! Every scenario is also run single-threaded with memoization off (the
//! pre-executor behaviour); each timing is the best of three runs.
//!
//! The report additionally measures the cost of `subset3d-obs` metric
//! recording (`metrics_overhead_pct`: workload_sim with metrics on vs.
//! off, budget < 2 %) and embeds the `MetricsSnapshot` of an
//! instrumented sweep-plus-pipeline pass.

use serde::Serialize;
use std::time::Instant;
use subset3d_core::{SubsetConfig, Subsetter};
use subset3d_gpusim::{ArchConfig, CacheMode, Simulator, SweepSession};
use subset3d_trace::gen::GameProfile;
use subset3d_trace::Workload;

/// Timing runs per measurement; the best is reported.
const RUNS: usize = 3;

/// Sweep passes in the iterated-sweep scenario.
const SWEEP_PASSES: usize = 4;

#[derive(Serialize)]
struct Measurement {
    wall_ms: f64,
    draws_per_sec: f64,
}

#[derive(Serialize)]
struct Scenario {
    single_thread_uncached: Measurement,
    parallel_memoized: Measurement,
    speedup: f64,
    cache_hit_rate: f64,
    frame_cache_hit_rate: f64,
}

#[derive(Serialize)]
struct Report {
    threads: usize,
    workload_frames: usize,
    workload_draws: usize,
    sweep_candidates: usize,
    sweep_passes: usize,
    workload_sim: Scenario,
    iterated_sweep: Scenario,
    subsetting_pipeline: Scenario,
    /// Wall-time cost of metric recording on the workload_sim scenario,
    /// in percent (negative values are measurement noise).
    metrics_overhead_pct: f64,
    /// Wall time of one differential-oracle comparison over the testkit
    /// corpus (all cache modes, both passes) — the price of the tier-1
    /// `testkit` step, tracked so harness regressions are visible.
    oracle_check_ms: f64,
    /// Snapshot of an instrumented sweep-plus-pipeline pass.
    metrics: subset3d_obs::MetricsSnapshot,
}

/// Best-of-[`RUNS`] wall time of `f`, in milliseconds.
fn best_ms(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn measurement(wall_ms: f64, draws: usize) -> Measurement {
    Measurement {
        wall_ms,
        draws_per_sec: draws as f64 / (wall_ms / 1e3),
    }
}

fn scenario(
    draws: usize,
    baseline: impl FnMut(),
    optimized: impl FnMut(),
    stats: subset3d_gpusim::CacheStats,
) -> Scenario {
    let base = best_ms(baseline);
    let opt = best_ms(optimized);
    Scenario {
        speedup: base / opt,
        single_thread_uncached: measurement(base, draws),
        parallel_memoized: measurement(opt, draws),
        cache_hit_rate: stats.hit_rate(),
        frame_cache_hit_rate: stats.frame_hit_rate(),
    }
}

fn main() {
    let threads = subset3d_exec::default_threads();
    let workload: Workload = GameProfile::shooter("bench")
        .frames(120)
        .draws_per_frame(400)
        .build(11)
        .generate();
    let candidates = ArchConfig::pathfinding_candidates();
    let draws = workload.total_draws();
    println!(
        "bench_report: {} frames / {} draws, {} candidate configs, {} threads",
        workload.frames().len(),
        draws,
        candidates.len(),
        threads,
    );

    // -- workload simulation (cold, out-of-the-box) --------------------
    let sim_stats = {
        let sim = Simulator::new(ArchConfig::baseline());
        sim.simulate_workload(&workload).expect("simulate");
        sim.cache_stats()
    };
    let workload_sim = scenario(
        draws,
        || {
            subset3d_exec::set_thread_count(1);
            let sim = Simulator::new(ArchConfig::baseline());
            sim.set_cache_mode(CacheMode::Off);
            sim.simulate_workload(&workload).expect("simulate");
        },
        || {
            subset3d_exec::set_thread_count(threads);
            let sim = Simulator::new(ArchConfig::baseline());
            sim.simulate_workload(&workload).expect("simulate");
        },
        sim_stats,
    );

    // -- iterated pathfinding sweep ------------------------------------
    let sweep_stats = {
        let session = SweepSession::new(&candidates).expect("session");
        for _ in 0..SWEEP_PASSES {
            session.sweep(&workload).expect("sweep");
        }
        session.cache_stats()
    };
    let iterated_sweep = scenario(
        draws * candidates.len() * SWEEP_PASSES,
        || {
            subset3d_exec::set_thread_count(1);
            let session = SweepSession::new(&candidates).expect("session");
            session.set_cache_mode(CacheMode::Off);
            for _ in 0..SWEEP_PASSES {
                session.sweep(&workload).expect("sweep");
            }
        },
        || {
            subset3d_exec::set_thread_count(threads);
            let session = SweepSession::new(&candidates).expect("session");
            for _ in 0..SWEEP_PASSES {
                session.sweep(&workload).expect("sweep");
            }
        },
        sweep_stats,
    );

    // -- subsetting pipeline -------------------------------------------
    let pipeline_stats = {
        subset3d_exec::set_thread_count(threads);
        let sim = Simulator::new(ArchConfig::baseline());
        Subsetter::new(SubsetConfig::default())
            .run(&workload, &sim)
            .expect("pipeline");
        sim.cache_stats()
    };
    let subsetting_pipeline = scenario(
        draws,
        || {
            subset3d_exec::set_thread_count(1);
            let sim = Simulator::new(ArchConfig::baseline());
            sim.set_cache_mode(CacheMode::Off);
            Subsetter::new(SubsetConfig::default())
                .run(&workload, &sim)
                .expect("pipeline");
        },
        || {
            subset3d_exec::set_thread_count(threads);
            let sim = Simulator::new(ArchConfig::baseline());
            Subsetter::new(SubsetConfig::default())
                .run(&workload, &sim)
                .expect("pipeline");
        },
        pipeline_stats,
    );
    subset3d_exec::set_thread_count(threads);

    // -- metric-recording overhead -------------------------------------
    // Same shape as workload_sim's optimized arm, metrics off vs. on.
    let sim_pass = || {
        let sim = Simulator::new(ArchConfig::baseline());
        sim.simulate_workload(&workload).expect("simulate");
    };
    let off_ms = best_ms(sim_pass);
    subset3d_obs::reset();
    subset3d_obs::set_enabled(true);
    let on_ms = best_ms(sim_pass);
    subset3d_obs::set_enabled(false);
    let metrics_overhead_pct = (on_ms - off_ms) / off_ms * 100.0;

    // -- instrumented snapshot -----------------------------------------
    subset3d_obs::reset();
    subset3d_obs::set_enabled(true);
    {
        let session = SweepSession::new(&candidates).expect("session");
        for _ in 0..SWEEP_PASSES {
            session.sweep(&workload).expect("sweep");
        }
        let sim = Simulator::new(ArchConfig::baseline());
        Subsetter::new(SubsetConfig::default())
            .run(&workload, &sim)
            .expect("pipeline");
    }
    let metrics = subset3d_obs::snapshot();
    subset3d_obs::set_enabled(false);

    // -- differential-oracle wall time ---------------------------------
    // Same comparison tier-1 runs (testkit corpus, every cache mode,
    // both passes), timed so the harness itself can't silently regress.
    let oracle_corpus = subset3d_testkit::corpus::oracle_corpus();
    let oracle_check_ms = best_ms(|| {
        for (name, workload) in &oracle_corpus {
            subset3d_testkit::oracle::run_oracle_all_modes(name, workload, &ArchConfig::baseline())
                .expect("oracle")
                .assert_clean();
        }
    });

    let report = Report {
        threads,
        workload_frames: workload.frames().len(),
        workload_draws: draws,
        sweep_candidates: candidates.len(),
        sweep_passes: SWEEP_PASSES,
        workload_sim,
        iterated_sweep,
        subsetting_pipeline,
        metrics_overhead_pct,
        oracle_check_ms,
        metrics,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("{json}");
    println!("wrote BENCH_pipeline.json");
}
