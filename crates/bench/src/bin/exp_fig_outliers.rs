//! E4 — Figure: cluster outliers per game.
//!
//! Clusters whose intra-cluster prediction error exceeds 20 % are outliers;
//! the paper reports an average of only 3.0 % across the corpus, indicating
//! high clustering quality. This also prints the distribution of
//! intra-cluster errors feeding the threshold.

use subset3d_bench::{header, pct, run_default_pipeline};
use subset3d_core::Table;
use subset3d_stats::Percentiles;
use subset3d_trace::gen::standard_corpus;

fn main() {
    header("E4", "cluster outliers per game (paper avg: 3.0%)");
    let corpus = standard_corpus();
    let mut table = Table::new(vec![
        "game",
        "clusters",
        "outliers",
        "outlier %",
        "err p50",
        "err p90",
        "err p99",
    ]);
    let mut fractions = Vec::new();
    for workload in &corpus {
        let outcome = run_default_pipeline(workload);
        let errors: Vec<f64> = outcome
            .evaluation
            .frames
            .iter()
            .flat_map(|f| f.cluster_errors.iter().copied())
            .collect();
        let outliers = errors.iter().filter(|&&e| e > 0.20).count();
        let fraction = outliers as f64 / errors.len() as f64;
        fractions.push(fraction);
        let p = Percentiles::of(&errors).expect("non-empty");
        table.row(vec![
            workload.name.clone(),
            errors.len().to_string(),
            outliers.to_string(),
            pct(fraction),
            pct(p.p50),
            pct(p.p90),
            pct(p.p99),
        ]);
    }
    table.row(vec![
        "AVERAGE".to_string(),
        String::new(),
        String::new(),
        pct(subset3d_stats::mean(&fractions)),
        String::new(),
        String::new(),
        String::new(),
    ]);
    println!("{}", table.render());
    println!("paper: avg 3.0% of clusters exceed the 20% intra-cluster error threshold");
}
