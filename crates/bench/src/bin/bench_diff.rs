//! Compares two pipeline benchmark reports and flags regressions.
//!
//! ```text
//! bench_diff <baseline.json> [candidate.json] [--threshold PCT] [--check]
//! ```
//!
//! With two files, the committed reports are compared directly. With
//! one, a fresh measurement runs in-process (median-of-3 timings — the
//! noise-robust policy, since a failing comparison must mean something)
//! and is compared against the baseline file.
//!
//! Wall times are machine-dependent, so absolute milliseconds are shown
//! for context but regressions are judged on the dimensionless metrics:
//! scenario speedups (lower is worse) and the two observability
//! overheads (higher is worse). The default threshold is 10 %.
//!
//! Exit status is non-zero when any regression exceeds the threshold,
//! unless `--check` (report-only dry-run for CI) is given.

use std::process::ExitCode;
use subset3d_bench::report::{collect, median_timer, Report};

/// Allowed relative regression before the diff fails, in percent.
const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

const USAGE: &str = "\
usage: bench_diff <baseline.json> [candidate.json] [--threshold PCT] [--check]

  Compares two BENCH_pipeline.json reports, or a committed baseline
  against a fresh in-process measurement when no candidate is given.
  --threshold PCT   allowed regression on speedups/overheads (default 10)
  --check           report only; always exit 0
";

struct Args {
    baseline: String,
    candidate: Option<String>,
    threshold_pct: f64,
    check: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    let mut check = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold_pct = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --threshold value: {v}"))?;
                if !threshold_pct.is_finite() || threshold_pct < 0.0 {
                    return Err(format!("bad --threshold value: {v}"));
                }
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag: {flag}")),
            path => positional.push(path.to_string()),
        }
    }
    match positional.len() {
        1 | 2 => Ok(Args {
            baseline: positional[0].clone(),
            candidate: positional.get(1).cloned(),
            threshold_pct,
            check,
        }),
        0 => Err("missing baseline report".into()),
        _ => Err("at most two report files".into()),
    }
}

fn load_report(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path} is not a bench report: {e}"))
}

/// One compared metric. `higher_is_better` decides the regression
/// direction: speedups regress downward, overheads regress upward.
struct Row {
    name: &'static str,
    base: f64,
    cand: f64,
    higher_is_better: bool,
}

impl Row {
    /// Signed regression in percent (positive = worse), or `None` when
    /// the baseline is degenerate (zero/NaN) and no ratio exists.
    fn regression_pct(&self) -> Option<f64> {
        if !self.base.is_finite() || !self.cand.is_finite() {
            return None;
        }
        if self.higher_is_better {
            if self.base <= 0.0 {
                return None;
            }
            Some((self.base - self.cand) / self.base * 100.0)
        } else {
            // Overheads hover around zero, so a ratio is meaningless;
            // compare in absolute percentage points instead.
            Some(self.cand.max(0.0) - self.base.max(0.0))
        }
    }
}

fn rows(base: &Report, cand: &Report) -> Vec<Row> {
    let speedups = [
        (
            "workload_sim.speedup",
            &base.workload_sim,
            &cand.workload_sim,
        ),
        (
            "iterated_sweep.speedup",
            &base.iterated_sweep,
            &cand.iterated_sweep,
        ),
        (
            "subsetting_pipeline.speedup",
            &base.subsetting_pipeline,
            &cand.subsetting_pipeline,
        ),
    ];
    let mut out: Vec<Row> = speedups
        .into_iter()
        .map(|(name, b, c)| Row {
            name,
            base: b.speedup,
            cand: c.speedup,
            higher_is_better: true,
        })
        .collect();
    out.push(Row {
        name: "metrics_overhead_pct",
        base: base.metrics_overhead_pct,
        cand: cand.metrics_overhead_pct,
        higher_is_better: false,
    });
    out.push(Row {
        name: "trace_overhead_pct",
        base: base.trace_overhead_pct,
        cand: cand.trace_overhead_pct,
        higher_is_better: false,
    });
    out
}

fn context_ms(base: &Report, cand: &Report) -> Vec<(&'static str, f64, f64)> {
    vec![
        (
            "workload_sim.parallel_memoized",
            base.workload_sim.parallel_memoized.wall_ms,
            cand.workload_sim.parallel_memoized.wall_ms,
        ),
        (
            "iterated_sweep.parallel_memoized",
            base.iterated_sweep.parallel_memoized.wall_ms,
            cand.iterated_sweep.parallel_memoized.wall_ms,
        ),
        (
            "subsetting_pipeline.parallel_memoized",
            base.subsetting_pipeline.parallel_memoized.wall_ms,
            cand.subsetting_pipeline.parallel_memoized.wall_ms,
        ),
        ("oracle_check", base.oracle_check_ms, cand.oracle_check_ms),
    ]
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("bench_diff: {msg}");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let base = match load_report(&args.baseline) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            return ExitCode::from(2);
        }
    };
    let cand = match &args.candidate {
        Some(path) => match load_report(path) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("bench_diff: {msg}");
                return ExitCode::from(2);
            }
        },
        None => {
            println!("bench_diff: no candidate file, measuring fresh (median-of-3)...");
            collect(median_timer)
        }
    };
    let cand_label = args.candidate.as_deref().unwrap_or("<fresh run>");
    println!(
        "bench_diff: {} vs {} (threshold {:.1}%{})",
        args.baseline,
        cand_label,
        args.threshold_pct,
        if args.check { ", report only" } else { "" },
    );
    if base.workload_draws != cand.workload_draws || base.threads != cand.threads {
        println!(
            "note: workload/threads differ ({} draws x{} vs {} draws x{}) — \
             comparison is indicative only",
            base.workload_draws, base.threads, cand.workload_draws, cand.threads,
        );
    }

    println!(
        "\n{:<34} {:>12} {:>12} {:>10}",
        "metric", "baseline", "candidate", "delta"
    );
    let mut regressions = Vec::new();
    for row in rows(&base, &cand) {
        let delta = row.regression_pct();
        let verdict = match delta {
            Some(d) if d > args.threshold_pct => {
                regressions.push((row.name, d));
                "REGRESSED"
            }
            Some(_) => "",
            None => "n/a",
        };
        println!(
            "{:<34} {:>12.3} {:>12.3} {:>9.2}{} {}",
            row.name,
            row.base,
            row.cand,
            delta.unwrap_or(f64::NAN),
            if row.higher_is_better { "%" } else { "pp" },
            verdict,
        );
    }
    println!("\nwall times (machine-dependent, for context):");
    for (name, b, c) in context_ms(&base, &cand) {
        println!("{name:<34} {b:>10.2}ms {c:>10.2}ms");
    }

    if regressions.is_empty() {
        println!("\nno regressions beyond {:.1}%", args.threshold_pct);
        return ExitCode::SUCCESS;
    }
    println!(
        "\n{} regression(s) beyond {:.1}%:",
        regressions.len(),
        args.threshold_pct
    );
    for (name, pct) in &regressions {
        println!("  {name}: {pct:.2} worse");
    }
    if args.check {
        println!("--check: reporting only, exiting 0");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
