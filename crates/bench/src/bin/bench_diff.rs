//! Compares two pipeline benchmark reports and flags regressions.
//!
//! ```text
//! bench_diff <baseline.json> [candidate.json] [--threshold PCT] [--check]
//!            [--metric SUBSTR] [--max-overhead PCT] [--min-speedup RATIO]
//! ```
//!
//! With two files, the committed reports are compared directly. With
//! one, a fresh measurement runs in-process (median-of-3 timings — the
//! noise-robust policy, since a failing comparison must mean something)
//! and is compared against the baseline file.
//!
//! Wall times are machine-dependent, so absolute milliseconds are shown
//! for context but regressions are judged on the dimensionless metrics:
//! scenario speedups (lower is worse) and the observability overheads
//! (metrics, tracing, telemetry sampling; higher is worse). The default
//! threshold is 10 %.
//!
//! A degenerate baseline (a stage too fast for the clock, recorded as a
//! `0.0` speedup) has no meaningful ratio; such rows show the absolute
//! delta in the metric's own units and are never judged as regressions.
//!
//! `--max-overhead` adds an absolute budget on top of the relative
//! comparison: any candidate `*_overhead_pct` above the budget fails
//! even if the baseline was equally bad.
//!
//! `--min-speedup` is an absolute floor on the candidate's scenario
//! speedups: any selected speedup row below the floor fails **even
//! under `--check`** — a floor violation means the optimization itself
//! stopped winning, which is never just noise worth waving through.
//!
//! Exit status is non-zero when any regression exceeds the threshold,
//! unless `--check` (report-only dry-run for CI) is given; floor
//! violations fail regardless.

use std::process::ExitCode;
use subset3d_bench::report::{collect, median_timer, Report};

/// Allowed relative regression before the diff fails, in percent.
const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

const USAGE: &str = "\
usage: bench_diff <baseline.json> [candidate.json] [--threshold PCT] [--check]
                  [--metric SUBSTR] [--max-overhead PCT] [--min-speedup RATIO]

  Compares two BENCH_pipeline.json reports, or a committed baseline
  against a fresh in-process measurement when no candidate is given.
  --threshold PCT      allowed regression on speedups/overheads (default 10)
  --metric SUBSTR      judge only metrics whose name contains SUBSTR
  --max-overhead PCT   absolute budget: candidate *_overhead_pct above PCT fails
  --min-speedup RATIO  absolute floor: candidate speedup below RATIO fails
                       even under --check
  --check              report only; exit 0 unless a speedup floor is broken
";

struct Args {
    baseline: String,
    candidate: Option<String>,
    threshold_pct: f64,
    metric_filter: Option<String>,
    max_overhead_pct: Option<f64>,
    min_speedup: Option<f64>,
    check: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    let mut metric_filter = None;
    let mut max_overhead_pct = None;
    let mut min_speedup = None;
    let mut check = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold_pct = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --threshold value: {v}"))?;
                if !threshold_pct.is_finite() || threshold_pct < 0.0 {
                    return Err(format!("bad --threshold value: {v}"));
                }
            }
            "--metric" => {
                let v = it.next().ok_or("--metric needs a value")?;
                if v.is_empty() {
                    return Err("--metric needs a non-empty value".into());
                }
                metric_filter = Some(v.clone());
            }
            "--max-overhead" => {
                let v = it.next().ok_or("--max-overhead needs a value")?;
                let pct = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --max-overhead value: {v}"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!("bad --max-overhead value: {v}"));
                }
                max_overhead_pct = Some(pct);
            }
            "--min-speedup" => {
                let v = it.next().ok_or("--min-speedup needs a value")?;
                let floor = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --min-speedup value: {v}"))?;
                if !floor.is_finite() || floor < 0.0 {
                    return Err(format!("bad --min-speedup value: {v}"));
                }
                min_speedup = Some(floor);
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag: {flag}")),
            path => positional.push(path.to_string()),
        }
    }
    match positional.len() {
        1 | 2 => Ok(Args {
            baseline: positional[0].clone(),
            candidate: positional.get(1).cloned(),
            threshold_pct,
            metric_filter,
            max_overhead_pct,
            min_speedup,
            check,
        }),
        0 => Err("missing baseline report".into()),
        _ => Err("at most two report files".into()),
    }
}

fn load_report(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path} is not a bench report: {e}"))
}

/// How a row's baseline/candidate pair compares.
enum Delta {
    /// Relative regression in percent (positive = worse); judged against
    /// the threshold.
    RelPct(f64),
    /// Overheads hover around zero, so a ratio is meaningless; absolute
    /// percentage-point delta (positive = worse), judged against the
    /// threshold directly.
    AbsPp(f64),
    /// Degenerate baseline (zero speedup = stage too fast to time): no
    /// ratio exists, so the absolute delta in the metric's own units is
    /// shown for context and the row is never judged.
    AbsUnjudged(f64),
    /// Non-finite input; nothing meaningful to show.
    NotComparable,
}

/// One compared metric. `higher_is_better` decides the regression
/// direction: speedups regress downward, overheads regress upward.
struct Row {
    name: &'static str,
    base: f64,
    cand: f64,
    higher_is_better: bool,
}

impl Row {
    fn delta(&self) -> Delta {
        if !self.base.is_finite() || !self.cand.is_finite() {
            return Delta::NotComparable;
        }
        if self.higher_is_better {
            if self.base <= 0.0 {
                return Delta::AbsUnjudged(self.cand - self.base);
            }
            Delta::RelPct((self.base - self.cand) / self.base * 100.0)
        } else {
            Delta::AbsPp(self.cand.max(0.0) - self.base.max(0.0))
        }
    }

    fn is_overhead(&self) -> bool {
        !self.higher_is_better
    }

    fn is_speedup(&self) -> bool {
        self.higher_is_better
    }
}

/// Speedup rows whose candidate value sits below the absolute floor.
/// Judged separately from [`judge`] because floor violations are fatal
/// even under `--check`.
fn below_floor(rows: &[Row], floor: f64) -> Vec<(&'static str, String)> {
    rows.iter()
        .filter(|row| row.is_speedup() && row.cand.is_finite() && row.cand < floor)
        .map(|row| {
            (
                row.name,
                format!("{:.3} below absolute floor {floor:.3}", row.cand),
            )
        })
        .collect()
}

fn rows(base: &Report, cand: &Report) -> Vec<Row> {
    let speedups = [
        (
            "workload_sim.speedup",
            &base.workload_sim,
            &cand.workload_sim,
        ),
        (
            "iterated_sweep.speedup",
            &base.iterated_sweep,
            &cand.iterated_sweep,
        ),
        (
            "subsetting_pipeline.speedup",
            &base.subsetting_pipeline,
            &cand.subsetting_pipeline,
        ),
    ];
    let mut out: Vec<Row> = speedups
        .into_iter()
        .map(|(name, b, c)| Row {
            name,
            base: b.speedup,
            cand: c.speedup,
            higher_is_better: true,
        })
        .collect();
    out.push(Row {
        name: "metrics_overhead_pct",
        base: clamp_overhead(base.metrics_overhead_pct),
        cand: clamp_overhead(cand.metrics_overhead_pct),
        higher_is_better: false,
    });
    out.push(Row {
        name: "trace_overhead_pct",
        base: clamp_overhead(base.trace_overhead_pct),
        cand: clamp_overhead(cand.trace_overhead_pct),
        higher_is_better: false,
    });
    out.push(Row {
        name: "telemetry_overhead_pct",
        base: clamp_overhead(base.telemetry_overhead_pct),
        cand: clamp_overhead(cand.telemetry_overhead_pct),
        higher_is_better: false,
    });
    out
}

/// Overheads are clamped at load: committed baselines predating the
/// at-rest clamp can carry a negative noise median, and a negative arm
/// would inflate the percentage-point delta and distort `--max-overhead`
/// budget checks. Cost below the clock floor is zero cost.
fn clamp_overhead(pct: f64) -> f64 {
    pct.max(0.0)
}

/// Regressions found when judging `rows` under the given policy.
/// Each entry is `(metric name, human-readable reason)`.
fn judge(
    rows: &[Row],
    threshold_pct: f64,
    max_overhead_pct: Option<f64>,
) -> Vec<(&'static str, String)> {
    let mut regressions = Vec::new();
    for row in rows {
        match row.delta() {
            Delta::RelPct(d) | Delta::AbsPp(d) if d > threshold_pct => {
                regressions.push((row.name, format!("{d:.2} worse")));
            }
            _ => {}
        }
        if let Some(budget) = max_overhead_pct {
            if row.is_overhead() && row.cand.is_finite() && row.cand > budget {
                regressions.push((
                    row.name,
                    format!("{:.2}% exceeds absolute budget {budget:.2}%", row.cand),
                ));
            }
        }
    }
    regressions
}

fn context_ms(base: &Report, cand: &Report) -> Vec<(&'static str, f64, f64)> {
    vec![
        (
            "workload_sim.parallel_memoized",
            base.workload_sim.parallel_memoized.wall_ms,
            cand.workload_sim.parallel_memoized.wall_ms,
        ),
        (
            "iterated_sweep.parallel_memoized",
            base.iterated_sweep.parallel_memoized.wall_ms,
            cand.iterated_sweep.parallel_memoized.wall_ms,
        ),
        (
            "subsetting_pipeline.parallel_memoized",
            base.subsetting_pipeline.parallel_memoized.wall_ms,
            cand.subsetting_pipeline.parallel_memoized.wall_ms,
        ),
        ("oracle_check", base.oracle_check_ms, cand.oracle_check_ms),
    ]
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("bench_diff: {msg}");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let base = match load_report(&args.baseline) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            return ExitCode::from(2);
        }
    };
    let cand = match &args.candidate {
        Some(path) => match load_report(path) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("bench_diff: {msg}");
                return ExitCode::from(2);
            }
        },
        None => {
            println!("bench_diff: no candidate file, measuring fresh (median-of-3)...");
            collect(median_timer)
        }
    };
    let cand_label = args.candidate.as_deref().unwrap_or("<fresh run>");
    println!(
        "bench_diff: {} vs {} (threshold {:.1}%{}{})",
        args.baseline,
        cand_label,
        args.threshold_pct,
        match args.max_overhead_pct {
            Some(b) => format!(", overhead budget {b:.1}%"),
            None => String::new(),
        },
        if args.check { ", report only" } else { "" },
    );
    if base.workload_draws != cand.workload_draws || base.threads != cand.threads {
        println!(
            "note: workload/threads differ ({} draws x{} vs {} draws x{}) — \
             comparison is indicative only",
            base.workload_draws, base.threads, cand.workload_draws, cand.threads,
        );
    }

    let all_rows = rows(&base, &cand);
    let selected: Vec<Row> = match &args.metric_filter {
        Some(substr) => all_rows
            .into_iter()
            .filter(|r| r.name.contains(substr.as_str()))
            .collect(),
        None => all_rows,
    };
    if selected.is_empty() {
        eprintln!(
            "bench_diff: --metric {} matches no metrics",
            args.metric_filter.as_deref().unwrap_or(""),
        );
        return ExitCode::from(2);
    }

    let regressions = judge(&selected, args.threshold_pct, args.max_overhead_pct);
    let floor_failures = match args.min_speedup {
        Some(floor) => below_floor(&selected, floor),
        None => Vec::new(),
    };

    println!(
        "\n{:<34} {:>12} {:>12} {:>10}",
        "metric", "baseline", "candidate", "delta"
    );
    for row in &selected {
        let regressed = regressions.iter().any(|(name, _)| *name == row.name);
        let (delta_text, verdict) = match row.delta() {
            Delta::RelPct(d) => (
                format!("{d:>9.2}%"),
                if regressed { "REGRESSED" } else { "" },
            ),
            Delta::AbsPp(d) => (
                format!("{d:>9.2}pp"),
                if regressed { "REGRESSED" } else { "" },
            ),
            Delta::AbsUnjudged(d) => (format!("{d:>+9.3} abs"), "n/a (degenerate baseline)"),
            Delta::NotComparable => ("       n/a".to_string(), "n/a"),
        };
        println!(
            "{:<34} {:>12.3} {:>12.3} {} {}",
            row.name, row.base, row.cand, delta_text, verdict,
        );
    }
    println!("\nwall times (machine-dependent, for context):");
    for (name, b, c) in context_ms(&base, &cand) {
        println!("{name:<34} {b:>10.2}ms {c:>10.2}ms");
    }

    if !floor_failures.is_empty() {
        println!("\n{} speedup floor violation(s):", floor_failures.len());
        for (name, reason) in &floor_failures {
            println!("  {name}: {reason}");
        }
    }
    if regressions.is_empty() {
        println!("\nno regressions beyond {:.1}%", args.threshold_pct);
        return if floor_failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            // Floor violations are absolute: --check does not wave
            // them through.
            ExitCode::FAILURE
        };
    }
    println!(
        "\n{} regression(s) beyond {:.1}%:",
        regressions.len(),
        args.threshold_pct
    );
    for (name, reason) in &regressions {
        println!("  {name}: {reason}");
    }
    if !floor_failures.is_empty() {
        ExitCode::FAILURE
    } else if args.check {
        println!("--check: reporting only, exiting 0");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_metric_and_max_overhead_flags() {
        let args = parse_args(&strs(&[
            "base.json",
            "cand.json",
            "--metric",
            "overhead",
            "--max-overhead",
            "2",
            "--check",
        ]))
        .unwrap();
        assert_eq!(args.metric_filter.as_deref(), Some("overhead"));
        assert_eq!(args.max_overhead_pct, Some(2.0));
        assert!(args.check);
    }

    #[test]
    fn parse_rejects_bad_max_overhead() {
        assert!(parse_args(&strs(&["b.json", "--max-overhead", "-1"])).is_err());
        assert!(parse_args(&strs(&["b.json", "--max-overhead", "inf"])).is_err());
        assert!(parse_args(&strs(&["b.json", "--max-overhead"])).is_err());
        assert!(parse_args(&strs(&["b.json", "--metric", ""])).is_err());
    }

    #[test]
    fn zero_baseline_speedup_is_absolute_and_unjudged() {
        let row = Row {
            name: "s",
            base: 0.0,
            cand: 3.0,
            higher_is_better: true,
        };
        match row.delta() {
            Delta::AbsUnjudged(d) => assert_eq!(d, 3.0),
            _ => panic!("expected absolute unjudged delta"),
        }
        // Even a huge absolute swing on a degenerate baseline is not a
        // regression: there is no ratio to judge.
        let down = Row {
            name: "s",
            base: 0.0,
            cand: -100.0,
            higher_is_better: true,
        };
        assert!(judge(&[row, down], 0.0, None).is_empty());
    }

    #[test]
    fn overheads_judged_in_percentage_points() {
        let row = Row {
            name: "metrics_overhead_pct",
            base: 1.0,
            cand: 4.5,
            higher_is_better: false,
        };
        match row.delta() {
            Delta::AbsPp(d) => assert!((d - 3.5).abs() < 1e-12),
            _ => panic!("expected pp delta"),
        }
        assert_eq!(judge(&[row], 2.0, None).len(), 1);
    }

    #[test]
    fn max_overhead_budget_flags_candidate_regardless_of_baseline() {
        // Baseline is just as bad, so the relative comparison passes —
        // only the absolute budget catches it.
        let row = Row {
            name: "metrics_overhead_pct",
            base: 5.0,
            cand: 5.1,
            higher_is_better: false,
        };
        assert!(judge(std::slice::from_ref(&row), 2.0, None).is_empty());
        let hits = judge(&[row], 2.0, Some(2.0));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].1.contains("budget"));
    }

    #[test]
    fn parse_min_speedup_flag() {
        let args = parse_args(&strs(&["b.json", "--min-speedup", "1.0"])).unwrap();
        assert_eq!(args.min_speedup, Some(1.0));
        assert!(parse_args(&strs(&["b.json", "--min-speedup", "-1"])).is_err());
        assert!(parse_args(&strs(&["b.json", "--min-speedup", "nan"])).is_err());
        assert!(parse_args(&strs(&["b.json", "--min-speedup"])).is_err());
    }

    #[test]
    fn speedup_floor_catches_candidate_regardless_of_baseline() {
        // Baseline was just as slow, so the relative comparison passes;
        // only the absolute floor flags the row.
        let slow = Row {
            name: "workload_sim.speedup",
            base: 0.9,
            cand: 0.95,
            higher_is_better: true,
        };
        let fast = Row {
            name: "iterated_sweep.speedup",
            base: 2.0,
            cand: 2.5,
            higher_is_better: true,
        };
        let overhead = Row {
            name: "metrics_overhead_pct",
            base: 0.5,
            cand: 0.6,
            higher_is_better: false,
        };
        let rows = [slow, fast, overhead];
        assert!(judge(&rows, 10.0, None).is_empty());
        let fails = below_floor(&rows, 1.0);
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].0, "workload_sim.speedup");
        assert!(fails[0].1.contains("floor"));
        // Overhead rows are never judged against the speedup floor.
        assert!(below_floor(&rows, 0.0).is_empty());
    }

    #[test]
    fn negative_overheads_are_clamped_at_load() {
        // A committed baseline predating the at-rest clamp (raw medians
        // like -2.32 were serialized) must not inflate the delta: the
        // candidate's true cost over a noise-negative baseline is its
        // own clamped value, not cand + |baseline|.
        let row = Row {
            name: "metrics_overhead_pct",
            base: clamp_overhead(-2.32),
            cand: clamp_overhead(0.5),
            higher_is_better: false,
        };
        match row.delta() {
            Delta::AbsPp(d) => assert!((d - 0.5).abs() < 1e-12),
            _ => panic!("expected pp delta"),
        }
        // A negative candidate is zero cost, not negative cost: it sits
        // exactly at a zero budget rather than under-running it, and a
        // tiny positive budget passes it.
        let neg_cand = Row {
            name: "trace_overhead_pct",
            base: clamp_overhead(1.0),
            cand: clamp_overhead(-0.3),
            higher_is_better: false,
        };
        assert!(judge(&[neg_cand], 10.0, Some(0.1)).is_empty());
    }

    #[test]
    fn max_overhead_budget_ignores_speedup_rows() {
        let row = Row {
            name: "workload_sim.speedup",
            base: 3.0,
            cand: 3.0,
            higher_is_better: true,
        };
        assert!(judge(&[row], 10.0, Some(0.0)).is_empty());
    }
}
