//! E9 — Ablation figure: which MAI features matter?
//!
//! Re-runs clustering with each feature group dropped (and with cost
//! weighting disabled) and reports how the error/efficiency operating point
//! moves — the design-choice ablation `DESIGN.md` calls out.

use subset3d_bench::{header, pct};
use subset3d_core::{SubsetConfig, Subsetter, Table};
use subset3d_features::{drop_group, FeatureGroup, FeatureKind};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

fn main() {
    header("E9", "MAI feature-set ablation");
    let workload = GameProfile::shooter("shock-1")
        .frames(40)
        .draws_per_frame(1400)
        .build(CORPUS_SEED)
        .generate();
    let sim = Simulator::new(ArchConfig::baseline());

    let mut table = Table::new(vec![
        "feature set",
        "dims",
        "efficiency",
        "pred. error",
        "outliers",
    ]);
    let mut run = |name: &str, config: SubsetConfig| {
        let dims = config.features.len();
        let outcome = Subsetter::new(config)
            .run(&workload, &sim)
            .expect("pipeline");
        table.row(vec![
            name.to_string(),
            dims.to_string(),
            pct(outcome.evaluation.mean_efficiency()),
            pct(outcome.evaluation.mean_prediction_error()),
            pct(outcome.evaluation.outlier_fraction()),
        ]);
    };

    run("full (cost-weighted)", SubsetConfig::default());
    run(
        "full (unweighted)",
        SubsetConfig::default().with_cost_weighting(false),
    );
    use FeatureGroup::*;
    for group in [Geometry, Shading, Texturing, Raster, State] {
        let features = drop_group(&FeatureKind::standard_set(), group);
        run(
            &format!("drop {group:?}"),
            SubsetConfig::default().with_features(features),
        );
    }
    println!("{}", table.render());
    println!("dropping Raster (coverage/shaded-pixels) should hurt error most");
}
