//! E15 — Ablation figure: shader-vector phases vs load-signature phases.
//!
//! SimPoint-style CPU subsetting matches intervals on execution-profile
//! vectors; the paper's contribution for 3D workloads is matching on
//! *shader vectors*. This experiment builds subsets with both signatures
//! and compares them on content fidelity (area confusion vs ground truth),
//! replay estimate error and frequency-scaling correlation.

use subset3d_bench::{header, pct, pct3};
use subset3d_core::{
    cluster_frame, detect_phases_by_load, frequency_scaling_validation, PhaseAnalysis,
    PhaseDetector, SubsetConfig, Table, WorkloadSubset,
};
use subset3d_gpusim::{ArchConfig, FrequencySweep, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};
use subset3d_trace::Workload;

fn subset_from(
    workload: &Workload,
    analysis: &PhaseAnalysis,
    config: &SubsetConfig,
) -> WorkloadSubset {
    let clusterings: Vec<_> = workload
        .frames()
        .iter()
        .map(|f| cluster_frame(f, workload, config))
        .collect();
    WorkloadSubset::build(workload, analysis, &clusterings, config.frames_per_phase)
}

/// Area-confusion of a phase assignment: among pairs of *single-segment*
/// intervals (intervals fully inside one scripted segment, so their
/// ground-truth area is unambiguous) placed in the same detected phase, the
/// fraction whose areas differ. `0` means the detector never conflates
/// level areas; high values mean representative frames stand in for
/// content they do not contain.
fn area_confusion(analysis: &PhaseAnalysis, truth: &subset3d_trace::gen::PhaseGroundTruth) -> f64 {
    // Ground-truth area of each pure interval; `None` entry = mixed
    // interval, excluded from the metric.
    let pure_area = |iv: &subset3d_core::FrameInterval| -> Option<Option<u8>> {
        let kinds: std::collections::BTreeSet<_> =
            iv.frames().map(|f| truth.per_frame[f].area()).collect();
        (kinds.len() == 1).then(|| kinds.into_iter().next().unwrap())
    };
    let mut same_phase_pairs = 0usize;
    let mut confused_pairs = 0usize;
    for phase in &analysis.phases {
        let areas: Vec<Option<u8>> = phase
            .intervals
            .iter()
            .filter_map(|&i| pure_area(&analysis.intervals[i]))
            .collect();
        for i in 0..areas.len() {
            for j in i + 1..areas.len() {
                same_phase_pairs += 1;
                if areas[i] != areas[j] {
                    confused_pairs += 1;
                }
            }
        }
    }
    if same_phase_pairs == 0 {
        0.0
    } else {
        confused_pairs as f64 / same_phase_pairs as f64
    }
}

fn main() {
    header(
        "E15",
        "phase-signature ablation: shader vectors vs load (SimPoint-style)",
    );
    let games = [
        GameProfile::shooter("shock-1")
            .frames(120)
            .draws_per_frame(900)
            .build(CORPUS_SEED),
        GameProfile::racing("speedrush")
            .frames(107)
            .draws_per_frame(700)
            .build(CORPUS_SEED.wrapping_add(4)),
    ];
    // Shorter intervals than the pipeline default keep most intervals
    // inside one scripted segment, so content purity is meaningful for
    // both signatures.
    let config = SubsetConfig::default().with_interval_len(5);
    let sim = Simulator::new(ArchConfig::baseline());
    let sweep = FrequencySweep::standard();

    let mut table = Table::new(vec![
        "game",
        "signature",
        "phases",
        "area confusion",
        "subset size",
        "replay err",
        "scaling r",
    ]);
    for generator in &games {
        let (workload, truth) = generator.generate_with_truth();
        let shader = PhaseDetector::new(config.interval_len)
            .with_similarity(config.phase_similarity)
            .detect(&workload)
            .expect("shader detect");
        let load =
            detect_phases_by_load(&workload, config.interval_len, 0.15).expect("load detect");

        let actual = sim.simulate_workload(&workload).expect("sim").total_ns;
        for (name, analysis) in [("shader-vector", &shader), ("load (SimPoint-ish)", &load)] {
            let subset = subset_from(&workload, analysis, &config);
            let estimate = subset.replay(&workload, &sim).expect("replay");
            let validation =
                frequency_scaling_validation(&workload, &subset, &ArchConfig::baseline(), &sweep)
                    .expect("validation");
            table.row(vec![
                workload.name.clone(),
                name.to_string(),
                analysis.phase_count().to_string(),
                pct(area_confusion(analysis, &truth)),
                pct3(subset.draw_fraction()),
                pct((estimate - actual).abs() / actual),
                format!("{:.4}", validation.correlation),
            ]);
        }
    }
    println!("{}", table.render());
    println!("both signatures validate under frequency scaling on this corpus, but");
    println!("load signatures are content-blind: they freely merge intervals from");
    println!("different level areas whenever draw counts coincide (high area");
    println!("confusion), so a representative frame stands in for content it does");
    println!("not contain — a latent risk for architecture changes that stress");
    println!("specific content (texture-heavy vs geometry-heavy areas). Shader");
    println!("vectors never conflate areas (zero confusion).");
}
