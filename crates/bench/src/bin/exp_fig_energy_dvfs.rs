//! E11 — Extension figure: DVFS energy-efficiency pathfinding via subsets.
//!
//! The paper validates subsets under frequency scaling for *performance*;
//! real DVFS pathfinding also needs the *energy* side (V² dynamic power vs
//! leakage race-to-idle). This experiment checks that the subset predicts
//! the parent's energy and energy-delay-product curve across the DVFS
//! range — including the location of the EDP-optimal point.

use subset3d_bench::{header, run_default_pipeline};
use subset3d_core::Table;
use subset3d_gpusim::{energy_delay_product, ArchConfig, FrequencySweep, PowerModel, Simulator};
use subset3d_trace::gen::standard_corpus;

fn main() {
    header("E11", "DVFS energy validation (extension beyond the paper)");
    let corpus = standard_corpus();
    let sweep = FrequencySweep::standard();
    let base = ArchConfig::baseline();

    let mut correlations = Vec::new();
    let mut edp_argmin_match = 0usize;
    for workload in &corpus {
        let outcome = run_default_pipeline(workload);
        let mut parent_energy = Vec::new();
        let mut subset_energy = Vec::new();
        let mut parent_edp = Vec::new();
        let mut subset_edp = Vec::new();
        for config in sweep.configs(&base) {
            let model = PowerModel::default_for(&config);
            let sim = Simulator::new(config.clone());
            let parent_cost = sim.simulate_workload(workload).expect("parent sim");
            let pe = model.workload_energy(&parent_cost, &config);
            parent_energy.push(pe.total_nj());
            parent_edp.push(energy_delay_product(&pe, parent_cost.total_ns));

            let replay = outcome
                .subset
                .replay_detailed(workload, &sim)
                .expect("replay");
            let mut se = subset3d_gpusim::Energy::default();
            for frame in &replay.frames {
                for (weight, cost) in &frame.draws {
                    let mut e = model.draw_energy(cost, &config);
                    e.dynamic_nj *= weight * frame.frame_weight;
                    e.static_nj *= weight * frame.frame_weight;
                    e.memory_nj *= weight * frame.frame_weight;
                    se.accumulate(e);
                }
            }
            subset_energy.push(se.total_nj());
            subset_edp.push(energy_delay_product(&se, replay.estimated_ns));
        }
        let r = subset3d_stats::pearson(&parent_energy, &subset_energy).expect("corr");
        correlations.push(r);
        let argmin = |v: &[f64]| {
            v.iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        let pa = argmin(&parent_edp);
        let sa = argmin(&subset_edp);
        if pa == sa {
            edp_argmin_match += 1;
        }
        println!(
            "{}: energy correlation r = {:.4}, EDP-optimal clock parent {} MHz vs subset {} MHz",
            workload.name,
            r,
            sweep.points_mhz()[pa] as u64,
            sweep.points_mhz()[sa] as u64
        );
    }
    println!();

    // Show one full curve for the first game.
    let workload = &corpus[0];
    let outcome = run_default_pipeline(workload);
    let mut table = Table::new(vec!["core MHz", "parent energy (J)", "subset energy (J)"]);
    for config in sweep.configs(&base) {
        let model = PowerModel::default_for(&config);
        let sim = Simulator::new(config.clone());
        let parent_cost = sim.simulate_workload(workload).expect("sim");
        let pe = model.workload_energy(&parent_cost, &config).total_nj();
        let replay = outcome
            .subset
            .replay_detailed(workload, &sim)
            .expect("replay");
        let mut se = 0.0;
        for frame in &replay.frames {
            for (weight, cost) in &frame.draws {
                se += model.draw_energy(cost, &config).total_nj() * weight * frame.frame_weight;
            }
        }
        table.row(vec![
            format!("{:.0}", config.core_clock_mhz),
            format!("{:.3}", pe * 1e-9),
            format!("{:.3}", se * 1e-9),
        ]);
    }
    println!("{}", table.render());
    println!(
        "energy correlation: min {:.4} | EDP-optimal clock agrees on {}/{} games",
        subset3d_stats::min(&correlations).unwrap_or(0.0),
        edp_argmin_match,
        corpus.len()
    );
}
