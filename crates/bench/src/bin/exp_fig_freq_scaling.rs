//! E8 — Figure: frequency-scaling validation.
//!
//! The paper's headline validation: the subset's performance improvement
//! under GPU core-frequency scaling correlates with the parent's at
//! r ≥ 99.7 %. This sweeps 400 MHz → 1.2 GHz and prints both improvement
//! series and the Pearson correlation per game.

use subset3d_bench::{header, run_default_pipeline};
use subset3d_core::{frequency_scaling_validation, Table};
use subset3d_gpusim::{ArchConfig, FrequencySweep};
use subset3d_trace::gen::standard_corpus;

fn main() {
    header("E8", "frequency-scaling correlation (paper: r >= 99.7%)");
    let corpus = standard_corpus();
    let sweep = FrequencySweep::standard();
    let base = ArchConfig::baseline();

    // Per-game sweeps fan out over the shared pool; results come back in
    // corpus order, so the printed figure is identical at any thread count.
    let validations = subset3d_exec::par_map_indexed(&corpus, |_, workload| {
        let outcome = run_default_pipeline(workload);
        frequency_scaling_validation(workload, &outcome.subset, &base, &sweep).expect("validation")
    });

    let mut correlations = Vec::new();
    for (workload, v) in corpus.iter().zip(&validations) {
        let ci = subset3d_stats::bootstrap_paired_ci(
            &v.parent_improvement,
            &v.subset_improvement,
            |a, b| subset3d_stats::pearson(a, b).ok(),
            1000,
            0.95,
            7,
        );
        match ci {
            Some(ci) => println!(
                "{} (r = {:.4}, 95% bootstrap CI [{:.4}, {:.4}]):",
                workload.name, v.correlation, ci.lo, ci.hi
            ),
            None => println!("{} (r = {:.4}):", workload.name, v.correlation),
        }
        let mut table = Table::new(vec!["core MHz", "parent improvement", "subset improvement"]);
        for ((mhz, p), s) in v
            .points_mhz
            .iter()
            .zip(&v.parent_improvement)
            .zip(&v.subset_improvement)
        {
            table.row(vec![
                format!("{mhz:.0}"),
                format!("{p:.4}x"),
                format!("{s:.4}x"),
            ]);
        }
        println!("{}", table.render());
        correlations.push(v.correlation);
    }
    let min = subset3d_stats::min(&correlations).unwrap_or(0.0);
    println!(
        "correlation per game: min {:.4}, mean {:.4} (paper: 0.997+)",
        min,
        subset3d_stats::mean(&correlations)
    );
}
