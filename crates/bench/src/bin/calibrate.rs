//! Calibration sweep: where does the threshold land error/efficiency?
//!
//! Not a paper artefact — this utility picks the default clustering
//! threshold so the pipeline's operating point matches the paper's
//! (≈1 % error @ ≈65.8 % efficiency). Run on a single mid-size game.

use subset3d_bench::{header, pct};
use subset3d_core::{ClusterMethod, SubsetConfig, Subsetter, Table};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

fn main() {
    header("CAL", "threshold calibration sweep");
    let workload = GameProfile::shooter("shock-1")
        .frames(40)
        .draws_per_frame(1400)
        .build(CORPUS_SEED)
        .generate();
    let sim = Simulator::new(ArchConfig::baseline());

    let mut table = Table::new(vec!["threshold", "efficiency", "error", "outliers"]);
    for &distance in &[0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 2.0, 2.5, 3.0] {
        let config =
            SubsetConfig::default().with_cluster_method(ClusterMethod::Threshold { distance });
        let outcome = Subsetter::new(config)
            .run(&workload, &sim)
            .expect("pipeline");
        table.row(vec![
            format!("{distance:.2}"),
            pct(outcome.evaluation.mean_efficiency()),
            pct(outcome.evaluation.mean_prediction_error()),
            pct(outcome.evaluation.outlier_fraction()),
        ]);
    }
    println!("{}", table.render());
}
