//! E14 — Simulator-validation figure: analytical texture hit-rate formula
//! vs the set-associative cache simulator.
//!
//! The analytical model must be cheap (O(1) per draw), so it approximates
//! cache behaviour with a locality/residency formula. This experiment runs
//! synthetic access streams through the real LRU cache model across the
//! locality and footprint ranges the generators produce, and reports how
//! the two track each other.

use subset3d_bench::{header, pct};
use subset3d_core::Table;
use subset3d_gpusim::cache::{run_bilinear_stream, CacheSim};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};
use subset3d_trace::{DrawId, PrimitiveTopology, TextureId};

fn main() {
    header(
        "E14",
        "texture-cache model validation (analytic vs LRU simulation)",
    );
    let config = ArchConfig::baseline();
    let cache_bytes = config.tex_cache_kib as usize * 1024;

    // Build a probe workload so the analytic path has real texture tables.
    let w = GameProfile::shooter("probe")
        .frames(1)
        .draws_per_frame(10)
        .build(CORPUS_SEED)
        .generate();
    let sim = Simulator::new(config.clone());

    let mut table = Table::new(vec![
        "locality",
        "footprint",
        "LRU-sim hit rate",
        "analytic hit rate",
        "delta",
    ]);
    let mut deltas = Vec::new();
    for &locality in &[0.3, 0.6, 0.9] {
        for &footprint_mib in &[0.25f64, 1.0, 8.0] {
            let footprint = (footprint_mib * 1024.0 * 1024.0) as u64;
            let mut cache = CacheSim::new(cache_bytes, 8, 64);
            let measured =
                run_bilinear_stream(&mut cache, footprint, 200_000, locality, 4096, 99).hit_rate();

            // Analytic: fabricate a draw with matching locality bound to a
            // texture of matching footprint, and read the hit rate the
            // model uses.
            let tex = w
                .textures()
                .iter()
                .min_by(|a, b| {
                    (a.footprint_bytes() - footprint as f64)
                        .abs()
                        .partial_cmp(&(b.footprint_bytes() - footprint as f64).abs())
                        .unwrap()
                })
                .expect("texture");
            let first = w.frames()[0].draw(0).expect("draw 0");
            let draw = subset3d_trace::DrawCall::builder(DrawId(0))
                .shaders(first.vertex_shader, first.pixel_shader)
                .geometry(PrimitiveTopology::TriangleList, 300)
                .textures(vec![TextureId(tex.id.raw())])
                .rasterization(0.05, 1.2, 0.8)
                .texel_locality(locality)
                .build();
            let analytic =
                subset3d_gpusim::analytic::texture_hit_rate(&draw, w.textures(), sim.config(), 0.0);
            deltas.push((measured - analytic).abs());
            table.row(vec![
                format!("{locality:.1}"),
                format!("{footprint_mib:.2} MiB"),
                pct(measured),
                pct(analytic),
                pct((measured - analytic).abs()),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "mean |delta| = {} — the formula tracks the LRU simulation's ordering",
        pct(subset3d_stats::mean(&deltas))
    );
}
