//! Shared setup for the experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (the experiment index lives in `DESIGN.md`; measured results are
//! recorded in `EXPERIMENTS.md`). Everything here is deterministic: the
//! corpus is generated from [`subset3d_trace::gen::CORPUS_SEED`] and all
//! algorithms take explicit seeds.

#![warn(missing_docs)]

pub mod report;

use subset3d_core::{SubsetConfig, Subsetter, SubsettingOutcome};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::Workload;

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a fraction as a percentage with three decimals (for sub-percent
/// quantities like subset sizes).
pub fn pct3(x: f64) -> String {
    format!("{:.3}%", x * 100.0)
}

/// Formats nanoseconds as milliseconds with two decimals.
pub fn ms(ns: f64) -> String {
    format!("{:.2}ms", ns / 1e6)
}

/// Runs the default pipeline on one workload against the baseline
/// architecture, panicking with context on failure (experiment binaries
/// have no error recovery to do).
pub fn run_default_pipeline(workload: &Workload) -> SubsettingOutcome {
    let sim = Simulator::new(ArchConfig::baseline());
    Subsetter::new(SubsetConfig::default())
        .run(workload, &sim)
        .unwrap_or_else(|e| panic!("pipeline failed on {}: {e}", workload.name))
}

/// Prints the standard experiment header.
pub fn header(id: &str, title: &str) {
    println!("== {id}: {title} ==");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(pct3(0.001234), "0.123%");
        assert_eq!(ms(1_500_000.0), "1.50ms");
    }
}
