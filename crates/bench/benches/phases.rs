//! Criterion bench: shader-vector phase detection over a whole trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subset3d_core::{PhaseDetector, ShaderVector};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};
use subset3d_trace::Workload;

fn workload(frames: usize) -> Workload {
    GameProfile::shooter("bench")
        .frames(frames)
        .draws_per_frame(300)
        .build(CORPUS_SEED)
        .generate()
}

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("phases");
    for &frames in &[60usize, 120] {
        let w = workload(frames);
        group.bench_with_input(BenchmarkId::new("detect_exact", frames), &w, |b, w| {
            b.iter(|| PhaseDetector::new(10).detect(w).unwrap().phase_count())
        });
        group.bench_with_input(BenchmarkId::new("detect_similar", frames), &w, |b, w| {
            b.iter(|| {
                PhaseDetector::new(10)
                    .with_similarity(0.9)
                    .detect(w)
                    .unwrap()
                    .phase_count()
            })
        });
    }
    let w = workload(60);
    group.bench_function("shader_vector_frame", |b| {
        b.iter(|| ShaderVector::of_frame(&w.frames()[0]).len())
    });
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
