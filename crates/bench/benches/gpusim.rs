//! Criterion bench: analytical vs pipelined GPU simulation per frame, plus
//! the raw cache simulator — the simulator design choices `DESIGN.md`
//! ablates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subset3d_gpusim::cache::{run_locality_stream, CacheSim};
use subset3d_gpusim::dram::{run_dram_stream, DramModel};
use subset3d_gpusim::event::PipelineSim;
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};
use subset3d_trace::Workload;

fn workload(draws: usize) -> Workload {
    GameProfile::shooter("bench")
        .frames(1)
        .draws_per_frame(draws)
        .build(CORPUS_SEED)
        .generate()
}

fn bench_gpusim(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpusim");
    for &draws in &[200usize, 1000] {
        let w = workload(draws);
        let analytic = Simulator::new(ArchConfig::baseline());
        let pipelined = PipelineSim::new(ArchConfig::baseline());
        group.bench_with_input(BenchmarkId::new("analytic_frame", draws), &w, |b, w| {
            b.iter(|| analytic.simulate_frame(&w.frames()[0], w).unwrap().total_ns)
        });
        group.bench_with_input(BenchmarkId::new("pipelined_frame", draws), &w, |b, w| {
            b.iter(|| {
                pipelined
                    .simulate_frame(&w.frames()[0], w)
                    .unwrap()
                    .total_ns
            })
        });
    }
    group.bench_function("cache_stream_50k", |b| {
        b.iter(|| {
            let mut cache = CacheSim::new(96 * 1024, 8, 64);
            run_locality_stream(&mut cache, 16 << 20, 50_000, 0.7, 1).hit_rate()
        })
    });
    group.bench_function("dram_stream_20k", |b| {
        b.iter(|| {
            let mut dram = DramModel::default_device();
            run_dram_stream(&mut dram, 64 << 20, 20_000, 0.5, 1).row_hit_rate()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gpusim);
criterion_main!(benches);
