//! Criterion bench: MAI feature extraction and normalisation per frame.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subset3d_features::{extract_frame_features, FeatureKind, Normalization, Pca};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};
use subset3d_trace::Workload;

fn workload(draws: usize) -> Workload {
    GameProfile::shooter("bench")
        .frames(1)
        .draws_per_frame(draws)
        .build(CORPUS_SEED)
        .generate()
}

fn bench_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("features");
    for &draws in &[200usize, 1000] {
        let w = workload(draws);
        group.bench_with_input(BenchmarkId::new("extract", draws), &w, |b, w| {
            b.iter(|| extract_frame_features(&w.frames()[0], w, FeatureKind::standard_set()).rows())
        });
        group.bench_with_input(BenchmarkId::new("extract+normalize", draws), &w, |b, w| {
            b.iter(|| {
                let mut m = extract_frame_features(&w.frames()[0], w, FeatureKind::standard_set());
                m.normalize(Normalization::ZScore);
                m.apply_cost_weights();
                m.rows()
            })
        });
    }
    let w = workload(1000);
    let mut m = extract_frame_features(&w.frames()[0], &w, FeatureKind::standard_set());
    m.normalize(Normalization::ZScore);
    group.bench_function("pca_top4_1000", |b| {
        b.iter(|| Pca::fit(&m, 4).unwrap().explained_ratio())
    });
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
