//! Criterion bench: the full subsetting pipeline and subset replay.
//!
//! Quantifies the promise of the paper: full-trace simulation cost vs
//! pipeline+replay cost.

use criterion::{criterion_group, criterion_main, Criterion};
use subset3d_core::{SubsetConfig, Subsetter};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};
use subset3d_trace::Workload;

fn workload() -> Workload {
    GameProfile::shooter("bench")
        .frames(30)
        .draws_per_frame(400)
        .build(CORPUS_SEED)
        .generate()
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let w = workload();
    let sim = Simulator::new(ArchConfig::baseline());

    group.bench_function("full_trace_simulation", |b| {
        b.iter(|| sim.simulate_workload(&w).unwrap().total_ns)
    });
    group.bench_function("subsetting_pipeline", |b| {
        b.iter(|| {
            Subsetter::new(SubsetConfig::default())
                .run(&w, &sim)
                .unwrap()
                .subset
                .selected_draw_count()
        })
    });
    let outcome = Subsetter::new(SubsetConfig::default())
        .run(&w, &sim)
        .unwrap();
    group.bench_function("subset_replay", |b| {
        b.iter(|| outcome.subset.replay(&w, &sim).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
