//! Criterion bench: clustering algorithms on one frame's feature matrix.
//!
//! Measures the cost of the E2/E5 clustering step — the dominant compute of
//! the pipeline — across algorithms at frame scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subset3d_cluster::{Hierarchical, KMeans, Linkage, ThresholdClustering};
use subset3d_core::SubsetConfig;
use subset3d_features::extract_frame_features;
use subset3d_trace::gen::{GameProfile, CORPUS_SEED};

fn frame_points(draws: usize) -> Vec<Vec<f64>> {
    let w = GameProfile::shooter("bench")
        .frames(1)
        .draws_per_frame(draws)
        .build(CORPUS_SEED)
        .generate();
    let config = SubsetConfig::default();
    let mut m = extract_frame_features(&w.frames()[0], &w, config.features);
    m.normalize(config.normalization);
    m.apply_cost_weights();
    m.to_rows()
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    for &draws in &[200usize, 1000] {
        let points = frame_points(draws);
        group.bench_with_input(BenchmarkId::new("threshold", draws), &points, |b, pts| {
            b.iter(|| ThresholdClustering::new(1.05).fit(pts).len())
        });
        group.bench_with_input(BenchmarkId::new("kmeans_k64", draws), &points, |b, pts| {
            b.iter(|| KMeans::new(64).seed(1).fit(pts).len())
        });
    }
    // Hierarchical is O(n²)+ — bench only the small frame.
    let small = frame_points(200);
    group.bench_function("hierarchical_avg_200", |b| {
        b.iter(|| {
            Hierarchical::with_distance_cutoff(Linkage::Average, 1.05)
                .fit(&small)
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
