//! Error type of the subsetting pipeline.

use std::fmt;
use subset3d_gpusim::SimError;

/// Error produced by the subsetting pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubsetError {
    /// The underlying simulator rejected the workload.
    Simulation(SimError),
    /// The workload has no frames, so nothing can be subset.
    EmptyWorkload,
    /// The configuration is inconsistent (e.g. zero interval length).
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A subset references a frame or draw missing from the workload it is
    /// being replayed against.
    SubsetMismatch {
        /// Human-readable description of the dangling reference.
        reason: String,
    },
}

impl fmt::Display for SubsetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubsetError::Simulation(e) => write!(f, "simulation failed: {e}"),
            SubsetError::EmptyWorkload => write!(f, "workload has no frames"),
            SubsetError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SubsetError::SubsetMismatch { reason } => write!(f, "subset mismatch: {reason}"),
        }
    }
}

impl std::error::Error for SubsetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubsetError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for SubsetError {
    fn from(e: SimError) -> Self {
        SubsetError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subset3d_trace::{DrawId, ShaderId};

    #[test]
    fn display_and_source() {
        let e = SubsetError::from(SimError::UnknownShader {
            draw: DrawId(1),
            shader: ShaderId(2),
        });
        assert!(e.to_string().contains("simulation failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e = SubsetError::EmptyWorkload;
        assert!(std::error::Error::source(&e).is_none());
        assert!(!e.to_string().is_empty());
    }
}
