//! Serialisable snapshot of an end-to-end pipeline run.
//!
//! [`PipelineSnapshot`] flattens a [`SubsettingOutcome`] into plain,
//! deterministic, serde-friendly data — the payload of the golden-snapshot
//! harness in `subset3d-testkit`. Every field derives from the outcome in
//! a fixed order, so the same workload, configuration and code produce the
//! same JSON bytes on every run; any byte of drift names a behaviour
//! change that must be either fixed or consciously re-golded.

use crate::pattern::PhasePattern;
use crate::pipeline::{OutcomeSummary, SubsettingOutcome};
use crate::validate::ScalingValidation;
use serde::{Deserialize, Serialize};
use subset3d_trace::Workload;

/// One frame kept in the subset, as recorded in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotFrame {
    /// Index of the frame within the parent workload.
    pub frame_index: usize,
    /// Number of parent frames this frame stands for.
    pub weight: f64,
    /// Number of representative draws kept from the frame.
    pub kept_draws: usize,
}

/// Deterministic, serialisable record of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSnapshot {
    /// The condensed table row.
    pub summary: OutcomeSummary,
    /// Per-frame relative prediction errors, in trace order.
    pub frame_errors: Vec<f64>,
    /// Per-frame clustering efficiencies, in trace order.
    pub efficiencies: Vec<f64>,
    /// Per-frame cluster counts, in trace order.
    pub cluster_counts: Vec<usize>,
    /// Phase id of every interval, in interval order.
    pub phase_sequence: Vec<usize>,
    /// Repeating-pattern summary of the phase sequence.
    pub pattern: PhasePattern,
    /// The frames kept in the subset, in selection order.
    pub subset_frames: Vec<SnapshotFrame>,
    /// Frequency-scaling validation, when the capture included one.
    pub scaling: Option<ScalingValidation>,
}

impl PipelineSnapshot {
    /// Captures a snapshot of an outcome against its parent workload.
    pub fn capture(workload: &Workload, outcome: &SubsettingOutcome) -> Self {
        PipelineSnapshot {
            summary: outcome.summary(workload),
            frame_errors: outcome
                .evaluation
                .frames
                .iter()
                .map(|f| f.error())
                .collect(),
            efficiencies: outcome.evaluation.efficiencies.clone(),
            cluster_counts: outcome
                .clusterings
                .iter()
                .map(|c| c.cluster_count())
                .collect(),
            phase_sequence: outcome.phases.sequence().to_vec(),
            pattern: outcome.pattern.clone(),
            subset_frames: outcome
                .subset
                .frames()
                .iter()
                .map(|f| SnapshotFrame {
                    frame_index: f.frame_index,
                    weight: f.weight,
                    kept_draws: f.draws.len(),
                })
                .collect(),
            scaling: None,
        }
    }

    /// Attaches a frequency-scaling validation to the snapshot.
    pub fn with_scaling(mut self, scaling: ScalingValidation) -> Self {
        self.scaling = Some(scaling);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SubsetConfig;
    use crate::pipeline::Subsetter;
    use subset3d_gpusim::{ArchConfig, Simulator};
    use subset3d_trace::gen::GameProfile;

    #[test]
    fn snapshot_round_trips_and_is_deterministic() {
        let w = GameProfile::shooter("snap")
            .frames(12)
            .draws_per_frame(40)
            .build(9)
            .generate();
        let sim = Simulator::new(ArchConfig::baseline());
        let run = || {
            let outcome = Subsetter::new(SubsetConfig::default())
                .run(&w, &sim)
                .unwrap();
            PipelineSnapshot::capture(&w, &outcome)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "capture must be deterministic");
        assert_eq!(a.frame_errors.len(), w.frames().len());
        assert_eq!(a.cluster_counts.len(), w.frames().len());
        assert!(!a.subset_frames.is_empty());
        let json = serde_json::to_string_pretty(&a).unwrap();
        let back: PipelineSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
