//! Per-frame draw-call clustering.

use crate::config::{ClusterMethod, SubsetConfig};
use serde::{Deserialize, Serialize};
use subset3d_cluster::{
    KMeansSubsetter, PcaAggloSubsetter, StratifiedSubsetter, Subsetter as SubsetterBackend,
    ThresholdSubsetter,
};
use subset3d_features::extract_frame_features;
use subset3d_obs::LazyHistogram;
use subset3d_trace::{Frame, Workload};

// Per-frame feature-extraction wall time; one sample per clustered
// frame, recorded inside the parallel clustering stage.
static OBS_FEATURES: LazyHistogram = LazyHistogram::new("pipeline.feature_extraction_ns");

/// One cluster of similar draws within a frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrawCluster {
    /// Indices of member draws within the frame, in submission order.
    pub members: Vec<usize>,
    /// Index of the representative (medoid) draw.
    pub representative: usize,
}

impl DrawCluster {
    /// Number of member draws.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty (never true for pipeline output).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The clustering of one frame's draws.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameClustering {
    /// The clusters, in creation order.
    pub clusters: Vec<DrawCluster>,
    /// Number of draws in the clustered frame.
    pub draw_count: usize,
}

impl FrameClustering {
    /// Clustering efficiency: the fraction of per-draw simulations the
    /// clustering avoids, `1 − clusters/draws` (the paper's metric; its
    /// corpus average is 65.8 %).
    pub fn efficiency(&self) -> f64 {
        if self.draw_count == 0 {
            return 0.0;
        }
        1.0 - self.clusters.len() as f64 / self.draw_count as f64
    }

    /// Number of clusters (simulations required).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Indices of the representative draws, in cluster order.
    pub fn representatives(&self) -> Vec<usize> {
        self.clusters.iter().map(|c| c.representative).collect()
    }
}

/// Builds the clustering backend a [`ClusterMethod`] selects.
///
/// The returned [`SubsetterBackend`](subset3d_cluster::Subsetter) fits over
/// a canonical content ordering of its input, so every method — including
/// the order-sensitive leader clustering — produces the same partition for
/// any permutation of the same draws.
///
/// # Examples
///
/// ```
/// use subset3d_core::{subsetter_for, ClusterMethod};
///
/// let backend = subsetter_for(&ClusterMethod::Threshold { distance: 1.0 }, 0);
/// assert_eq!(backend.name(), "threshold");
/// ```
pub fn subsetter_for(method: &ClusterMethod, seed: u64) -> Box<dyn SubsetterBackend> {
    match *method {
        ClusterMethod::Threshold { distance } => Box::new(ThresholdSubsetter::new(distance)),
        ClusterMethod::KMeansBic { max_k } => Box::new(KMeansSubsetter::bic(max_k, seed)),
        ClusterMethod::KMeansFixed { k } => Box::new(KMeansSubsetter::fixed(k, seed)),
        ClusterMethod::Stratified { strata, rate } => {
            Box::new(StratifiedSubsetter::new(strata, rate, seed))
        }
        ClusterMethod::PcaAgglo {
            components,
            clusters,
        } => Box::new(PcaAggloSubsetter::new(components, clusters)),
    }
}

/// Summarises one frame as a single feature vector: the per-column means of
/// its **raw** (un-normalised) MAI feature matrix.
///
/// This is the point the streaming service clusters *across* frames to pick
/// representative frames, so normalisation is deliberately skipped —
/// per-frame z-scoring would zero out exactly the cross-frame differences
/// the clustering needs. Empty frames summarise to the zero vector.
///
/// # Examples
///
/// ```
/// use subset3d_core::{frame_feature_point, SubsetConfig};
/// use subset3d_trace::gen::GameProfile;
///
/// let w = GameProfile::shooter("g").frames(2).draws_per_frame(30).build(1).generate();
/// let config = SubsetConfig::default();
/// let p = frame_feature_point(&w.frames()[0], &w, &config);
/// assert_eq!(p.len(), config.features.len());
/// ```
pub fn frame_feature_point(frame: &Frame, workload: &Workload, config: &SubsetConfig) -> Vec<f64> {
    let matrix = extract_frame_features(frame, workload, config.features.clone());
    let mut means = vec![0.0f64; matrix.cols()];
    if matrix.rows() == 0 {
        return means;
    }
    for row in matrix.iter_rows() {
        for (mean, value) in means.iter_mut().zip(row) {
            *mean += value;
        }
    }
    let n = matrix.rows() as f64;
    for mean in &mut means {
        *mean /= n;
    }
    means
}

/// Clusters one frame's draws on their MAI features.
///
/// The frame's features are extracted, normalised *within the frame* (the
/// paper clusters per frame) and grouped with the configured method; each
/// cluster's representative is its feature-space medoid.
///
/// # Examples
///
/// ```
/// use subset3d_core::{cluster_frame, SubsetConfig};
/// use subset3d_trace::gen::GameProfile;
///
/// let w = GameProfile::shooter("g").frames(1).draws_per_frame(50).build(1).generate();
/// let fc = cluster_frame(&w.frames()[0], &w, &SubsetConfig::default());
/// assert!(fc.cluster_count() <= fc.draw_count);
/// assert!(fc.efficiency() > 0.0);
/// ```
pub fn cluster_frame(frame: &Frame, workload: &Workload, config: &SubsetConfig) -> FrameClustering {
    let draw_count = frame.draw_count();
    if draw_count == 0 {
        return FrameClustering {
            clusters: Vec::new(),
            draw_count: 0,
        };
    }
    let feature_span = subset3d_obs::span(&OBS_FEATURES);
    let t_features = subset3d_obs::trace_span_arg(
        "pipeline",
        "pipeline.feature_extraction",
        "frame",
        u64::from(frame.id.raw()),
    );
    let mut matrix = extract_frame_features(frame, workload, config.features.clone());
    // Tail of the flow arrow this frame's `frame.simulate` span completes.
    subset3d_obs::trace_flow_start("pipeline", "frame.link", u64::from(frame.id.raw()));
    t_features.end();
    feature_span.end();
    matrix.normalize(config.normalization);
    if config.cost_weighting {
        matrix.apply_cost_weights();
    }
    let points = match config.pca_components {
        Some(k) => match subset3d_features::Pca::fit(&matrix, k) {
            // Cluster in the projected space.
            Ok(pca) => matrix.iter_rows().map(|r| pca.project(r)).collect(),
            // Degenerate frames (a single draw) fall back to raw features.
            Err(_) => matrix.to_rows(),
        },
        None => matrix.to_rows(),
    };

    let fit = subsetter_for(&config.method, config.seed).fit(&points);
    let clusters = fit
        .clustering
        .members()
        .into_iter()
        .zip(fit.representatives)
        .map(|(members, representative)| DrawCluster {
            members,
            representative,
        })
        .collect();
    FrameClustering {
        clusters,
        draw_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subset3d_trace::gen::GameProfile;

    fn workload() -> Workload {
        GameProfile::shooter("t")
            .frames(3)
            .draws_per_frame(80)
            .build(4)
            .generate()
    }

    fn config() -> SubsetConfig {
        SubsetConfig::default()
    }

    #[test]
    fn clusters_partition_the_frame() {
        let w = workload();
        let frame = &w.frames()[1];
        let fc = cluster_frame(frame, &w, &config());
        let mut seen = vec![false; frame.draw_count()];
        for cluster in &fc.clusters {
            assert!(!cluster.is_empty());
            assert!(cluster.members.contains(&cluster.representative));
            for &m in &cluster.members {
                assert!(!seen[m], "draw {m} in two clusters");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every draw must be clustered");
    }

    #[test]
    fn identical_draws_share_a_cluster() {
        // Zero threshold: only feature-identical draws group; draws of the
        // same material with identical geometry features must co-cluster.
        let w = workload();
        let frame = &w.frames()[1];
        let cfg = config().with_cluster_method(ClusterMethod::Threshold { distance: 0.0 });
        let fc = cluster_frame(frame, &w, &cfg);
        // Zero distance means zero information loss: every cluster's draws
        // have identical features, so efficiency is exactly the fraction of
        // duplicate-feature draws.
        assert!(fc.cluster_count() <= frame.draw_count());
    }

    #[test]
    fn looser_threshold_fewer_clusters() {
        let w = workload();
        let frame = &w.frames()[1];
        let tight = cluster_frame(
            frame,
            &w,
            &config().with_cluster_method(ClusterMethod::Threshold { distance: 0.2 }),
        );
        let loose = cluster_frame(
            frame,
            &w,
            &config().with_cluster_method(ClusterMethod::Threshold { distance: 4.0 }),
        );
        assert!(loose.cluster_count() <= tight.cluster_count());
        assert!(loose.efficiency() >= tight.efficiency());
    }

    #[test]
    fn kmeans_fixed_respects_k() {
        let w = workload();
        let frame = &w.frames()[1];
        let fc = cluster_frame(
            frame,
            &w,
            &config().with_cluster_method(ClusterMethod::KMeansFixed { k: 7 }),
        );
        assert!(fc.cluster_count() <= 7);
        assert!(fc.cluster_count() >= 1);
    }

    #[test]
    fn kmeans_bic_produces_valid_partition() {
        let w = workload();
        let frame = &w.frames()[2];
        let fc = cluster_frame(
            frame,
            &w,
            &config().with_cluster_method(ClusterMethod::KMeansBic { max_k: 12 }),
        );
        let total: usize = fc.clusters.iter().map(DrawCluster::len).sum();
        assert_eq!(total, frame.draw_count());
    }

    #[test]
    fn stratified_produces_valid_partition() {
        let w = workload();
        let frame = &w.frames()[1];
        let fc = cluster_frame(
            frame,
            &w,
            &config().with_cluster_method(ClusterMethod::Stratified {
                strata: 8,
                rate: 0.1,
            }),
        );
        let total: usize = fc.clusters.iter().map(DrawCluster::len).sum();
        assert_eq!(total, frame.draw_count());
        // ~10 % sampling with 8 strata keeps well under one cluster per draw.
        assert!(fc.efficiency() > 0.5, "efficiency {}", fc.efficiency());
    }

    #[test]
    fn pca_agglo_respects_target_count() {
        let w = workload();
        let frame = &w.frames()[1];
        let fc = cluster_frame(
            frame,
            &w,
            &config().with_cluster_method(ClusterMethod::PcaAgglo {
                components: 4,
                clusters: 16,
            }),
        );
        let total: usize = fc.clusters.iter().map(DrawCluster::len).sum();
        assert_eq!(total, frame.draw_count());
        assert!(fc.cluster_count() <= 16);
    }

    #[test]
    fn every_method_clusters_draw_order_invariantly() {
        // The backends fit over a canonical content ordering, so reversing
        // the frame's draw list must yield the same partition content.
        let w = workload();
        let frame = &w.frames()[0];
        let reversed = Frame::new(
            frame.id,
            (0..frame.draw_count())
                .rev()
                .map(|i| frame.draw(i).unwrap())
                .collect(),
        );
        for method in [
            ClusterMethod::Threshold { distance: 1.02 },
            ClusterMethod::KMeansBic { max_k: 8 },
            ClusterMethod::Stratified {
                strata: 8,
                rate: 0.1,
            },
            ClusterMethod::PcaAgglo {
                components: 4,
                clusters: 16,
            },
        ] {
            let cfg = config().with_cluster_method(method.clone());
            let a = cluster_frame(frame, &w, &cfg);
            let b = cluster_frame(&reversed, &w, &cfg);
            assert_eq!(
                a.cluster_count(),
                b.cluster_count(),
                "cluster count moved under draw reversal for {method:?}"
            );
            // Cluster populations must match as multisets.
            let mut sizes_a: Vec<usize> = a.clusters.iter().map(DrawCluster::len).collect();
            let mut sizes_b: Vec<usize> = b.clusters.iter().map(DrawCluster::len).collect();
            sizes_a.sort_unstable();
            sizes_b.sort_unstable();
            assert_eq!(sizes_a, sizes_b, "populations moved for {method:?}");
        }
    }

    #[test]
    fn empty_frame_clusters_to_nothing() {
        let w = workload();
        let empty = Frame::new(subset3d_trace::FrameId(99), Vec::new());
        let fc = cluster_frame(&empty, &w, &config());
        assert_eq!(fc.cluster_count(), 0);
        assert_eq!(fc.efficiency(), 0.0);
    }

    #[test]
    fn pca_projection_still_partitions() {
        let w = workload();
        let frame = &w.frames()[1];
        let fc = cluster_frame(frame, &w, &config().with_pca(Some(4)));
        let total: usize = fc.clusters.iter().map(DrawCluster::len).sum();
        assert_eq!(total, frame.draw_count());
        // Projection can only merge (distances shrink), never split: at the
        // same threshold the cluster count is at most the full-space count.
        let full = cluster_frame(frame, &w, &config());
        assert!(fc.cluster_count() <= full.cluster_count());
    }

    #[test]
    fn pca_on_single_draw_frame_falls_back() {
        let w = workload();
        let one = Frame::new(
            subset3d_trace::FrameId(77),
            vec![w.frames()[0].draw(0).unwrap()],
        );
        let fc = cluster_frame(&one, &w, &config().with_pca(Some(4)));
        assert_eq!(fc.cluster_count(), 1);
    }

    #[test]
    fn deterministic() {
        let w = workload();
        let frame = &w.frames()[0];
        let a = cluster_frame(frame, &w, &config());
        let b = cluster_frame(frame, &w, &config());
        assert_eq!(a, b);
    }
}
