//! 3D workload subsetting for GPU architecture pathfinding.
//!
//! This crate implements the methodology of *"3D Workload Subsetting for
//! GPU Architecture Pathfinding"* (V. George, IISWC 2015):
//!
//! 1. **Draw-call clustering** ([`cluster_frame`], [`FrameClustering`]) —
//!    draws within each frame are grouped by similarity of their
//!    micro-architecture-independent features; only one representative per
//!    cluster needs simulation, and the frame's performance is predicted as
//!    the weighted sum of representative costs ([`predict_frame`]).
//!    Quality metrics mirror the paper: per-frame *prediction error*,
//!    *clustering efficiency* (fraction of simulations avoided) and
//!    *cluster outliers* (clusters whose intra-cluster prediction error
//!    exceeds 20 %).
//! 2. **Phase detection** ([`PhaseDetector`]) — frame intervals are
//!    characterised by their [`ShaderVector`]s; intervals with equal
//!    vectors belong to the same phase, exposing the repetitive structure
//!    of gameplay and letting one interval stand for every repeat.
//! 3. **Subset extraction & validation** ([`Subsetter`],
//!    [`WorkloadSubset`]) — combining both reductions yields subsets well
//!    under 1 % of the parent workload whose response to architecture
//!    changes (frequency scaling, design-point ranking) tracks the parent
//!    with correlation above 99 %.
//!
//! # Examples
//!
//! ```
//! use subset3d_core::{SubsetConfig, Subsetter};
//! use subset3d_gpusim::{ArchConfig, Simulator};
//! use subset3d_trace::gen::GameProfile;
//!
//! let workload = GameProfile::shooter("demo")
//!     .frames(24)
//!     .draws_per_frame(60)
//!     .build(7)
//!     .generate();
//! let sim = Simulator::new(ArchConfig::baseline());
//! let outcome = Subsetter::new(SubsetConfig::default()).run(&workload, &sim)?;
//!
//! // The subset is a small fraction of the parent…
//! assert!(outcome.subset.draw_fraction() < 0.5);
//! // …and clustering predicted per-frame performance accurately.
//! assert!(outcome.evaluation.mean_prediction_error() < 0.2);
//! # Ok::<(), subset3d_core::SubsetError>(())
//! ```

#![warn(missing_docs)]

mod config;
mod crossframe;
mod drawcluster;
mod error;
mod interval;
mod outlier;
mod pattern;
mod phase;
mod phase_alt;
mod pipeline;
mod predict;
mod report;
mod shader_vector;
mod snapshot;
mod subset;
mod suite;
mod validate;

pub use config::{ClusterMethod, SubsetConfig};
pub use crossframe::{
    cluster_workload_global, predict_workload_global, DrawRef, GlobalCluster, GlobalClustering,
    GlobalPrediction,
};
pub use drawcluster::{
    cluster_frame, frame_feature_point, subsetter_for, DrawCluster, FrameClustering,
};
pub use error::SubsetError;
pub use interval::{interval_signatures, FrameInterval};
pub use outlier::{outlier_fraction, OUTLIER_ERROR_THRESHOLD};
pub use pattern::PhasePattern;
pub use phase::{Phase, PhaseAnalysis, PhaseDetector};
pub use phase_alt::detect_phases_by_load;
pub use pipeline::{OutcomeSummary, Subsetter, SubsettingOutcome, WorkloadEvaluation};
pub use predict::{predict_frame, FramePrediction};
pub use report::Table;
pub use shader_vector::ShaderVector;
pub use snapshot::{PipelineSnapshot, SnapshotFrame};
pub use subset::{ReplayedFrame, SelectedDraw, SelectedFrame, SubsetReplay, WorkloadSubset};
pub use suite::{subset_suite, validate_suite_scaling, SuiteOutcome};
pub use validate::{frequency_scaling_validation, pathfinding_rank_validation, ScalingValidation};
