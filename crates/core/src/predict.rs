//! Frame-performance prediction from cluster representatives.

use crate::drawcluster::FrameClustering;
use serde::{Deserialize, Serialize};
use subset3d_gpusim::FrameCost;

/// The prediction quality of one frame's clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FramePrediction {
    /// Simulated (ground-truth) frame time, ns.
    pub actual_ns: f64,
    /// Predicted frame time: Σ over clusters of `rep cost × cluster size`.
    pub predicted_ns: f64,
    /// Relative per-cluster prediction errors
    /// (`|rep×n − Σ actual| / Σ actual` per cluster).
    pub cluster_errors: Vec<f64>,
}

impl FramePrediction {
    /// Relative per-frame prediction error, `|predicted − actual| / actual`
    /// (the paper's headline metric; its corpus average is 1.0 %).
    pub fn error(&self) -> f64 {
        if self.actual_ns <= 0.0 {
            return 0.0;
        }
        (self.predicted_ns - self.actual_ns).abs() / self.actual_ns
    }
}

/// Predicts a frame's performance from its clustering and the per-draw
/// simulated costs, exactly as the paper evaluates clustering quality: each
/// cluster is charged its representative's cost times its population.
///
/// # Panics
///
/// Panics if the clustering and cost refer to different draw counts.
///
/// # Examples
///
/// ```
/// use subset3d_core::{cluster_frame, predict_frame, SubsetConfig};
/// use subset3d_gpusim::{ArchConfig, Simulator};
/// use subset3d_trace::gen::GameProfile;
///
/// let w = GameProfile::shooter("g").frames(1).draws_per_frame(60).build(1).generate();
/// let sim = Simulator::new(ArchConfig::baseline());
/// let frame = &w.frames()[0];
/// let clustering = cluster_frame(frame, &w, &SubsetConfig::default());
/// let cost = sim.simulate_frame(frame, &w)?;
/// let prediction = predict_frame(&clustering, &cost);
/// assert!(prediction.error() < 0.5);
/// # Ok::<(), subset3d_gpusim::SimError>(())
/// ```
pub fn predict_frame(clustering: &FrameClustering, cost: &FrameCost) -> FramePrediction {
    assert_eq!(
        clustering.draw_count,
        cost.draws.len(),
        "clustering and cost must describe the same frame"
    );
    let actual_ns = cost.total_ns;
    let mut predicted_ns = 0.0;
    let mut cluster_errors = Vec::with_capacity(clustering.clusters.len());
    for cluster in &clustering.clusters {
        let rep_cost = cost.draws[cluster.representative].time_ns;
        let cluster_predicted = rep_cost * cluster.len() as f64;
        let cluster_actual: f64 = cluster.members.iter().map(|&m| cost.draws[m].time_ns).sum();
        predicted_ns += cluster_predicted;
        cluster_errors.push(if cluster_actual > 0.0 {
            (cluster_predicted - cluster_actual).abs() / cluster_actual
        } else {
            0.0
        });
    }
    FramePrediction {
        actual_ns,
        predicted_ns,
        cluster_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawcluster::DrawCluster;
    use subset3d_gpusim::{DrawCost, Stage};

    fn cost_of(times: &[f64]) -> FrameCost {
        FrameCost::from_draws(
            times
                .iter()
                .map(|&t| DrawCost {
                    geometry_cycles: 0.0,
                    raster_cycles: 0.0,
                    pixel_cycles: 0.0,
                    texture_cycles: 0.0,
                    rop_cycles: 0.0,
                    overhead_cycles: 0.0,
                    mem_bytes: 0.0,
                    time_ns: t,
                    bottleneck: Stage::Overhead,
                })
                .collect(),
        )
    }

    fn clustering(clusters: Vec<(Vec<usize>, usize)>, draws: usize) -> FrameClustering {
        FrameClustering {
            clusters: clusters
                .into_iter()
                .map(|(members, representative)| DrawCluster {
                    members,
                    representative,
                })
                .collect(),
            draw_count: draws,
        }
    }

    #[test]
    fn perfect_clusters_zero_error() {
        // All members of each cluster cost the same as the rep.
        let cost = cost_of(&[2.0, 2.0, 5.0, 5.0, 5.0]);
        let fc = clustering(vec![(vec![0, 1], 0), (vec![2, 3, 4], 3)], 5);
        let p = predict_frame(&fc, &cost);
        assert_eq!(p.predicted_ns, 19.0);
        assert_eq!(p.actual_ns, 19.0);
        assert_eq!(p.error(), 0.0);
        assert!(p.cluster_errors.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn mixed_cluster_reports_error() {
        // One cluster groups a 1ns and a 3ns draw with the 1ns rep:
        // predicted 2, actual 4 → frame error 50%, cluster error 50%.
        let cost = cost_of(&[1.0, 3.0]);
        let fc = clustering(vec![(vec![0, 1], 0)], 2);
        let p = predict_frame(&fc, &cost);
        assert_eq!(p.predicted_ns, 2.0);
        assert_eq!(p.actual_ns, 4.0);
        assert!((p.error() - 0.5).abs() < 1e-12);
        assert!((p.cluster_errors[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn errors_can_cancel_across_clusters() {
        // Over-predicting one cluster and under-predicting another can
        // cancel at frame level — the per-cluster errors still show it.
        let cost = cost_of(&[1.0, 3.0, 3.0, 1.0]);
        let fc = clustering(vec![(vec![0, 1], 0), (vec![2, 3], 2)], 4);
        let p = predict_frame(&fc, &cost);
        assert_eq!(p.predicted_ns, 8.0);
        assert_eq!(p.actual_ns, 8.0);
        assert_eq!(p.error(), 0.0);
        assert!(p.cluster_errors.iter().all(|&e| e > 0.0));
    }

    #[test]
    fn empty_frame_zero_everything() {
        let p = predict_frame(&clustering(Vec::new(), 0), &cost_of(&[]));
        assert_eq!(p.error(), 0.0);
        assert_eq!(p.predicted_ns, 0.0);
    }

    #[test]
    #[should_panic(expected = "same frame")]
    fn mismatched_inputs_rejected() {
        predict_frame(&clustering(vec![(vec![0], 0)], 1), &cost_of(&[1.0, 2.0]));
    }
}
