//! Workload-global (cross-frame) draw clustering.
//!
//! The paper clusters *within* each frame. Frames of the same phase are
//! hugely redundant with each other too, so clustering the whole workload's
//! draws at once pushes efficiency much higher — at the cost of per-frame
//! prediction fidelity and one global pass. This module implements the
//! global variant for the E12 ablation.

use crate::config::{ClusterMethod, SubsetConfig};
use serde::{Deserialize, Serialize};
use subset3d_cluster::{medoid_of, ThresholdClustering};
use subset3d_features::{extract_frame_features, FeatureMatrix};
use subset3d_gpusim::WorkloadCost;
use subset3d_stats::mean;
use subset3d_trace::Workload;

/// Location of a draw within a workload.
pub type DrawRef = (usize, usize); // (frame index, draw index)

/// One workload-global cluster of similar draws.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalCluster {
    /// Member draws across the whole trace.
    pub members: Vec<DrawRef>,
    /// The representative (medoid) draw.
    pub representative: DrawRef,
}

/// The workload-global clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalClustering {
    /// Clusters in creation order.
    pub clusters: Vec<GlobalCluster>,
    /// Total draws clustered.
    pub total_draws: usize,
}

impl GlobalClustering {
    /// Workload-level clustering efficiency: simulations avoided across the
    /// whole trace.
    pub fn efficiency(&self) -> f64 {
        if self.total_draws == 0 {
            return 0.0;
        }
        1.0 - self.clusters.len() as f64 / self.total_draws as f64
    }

    /// Number of global clusters (simulations needed).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }
}

/// Prediction quality of a global clustering, judged at frame granularity
/// so it is directly comparable with the per-frame pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalPrediction {
    /// Per-frame relative errors, in trace order.
    pub frame_errors: Vec<f64>,
    /// Fraction of clusters whose intra-cluster error exceeds 20 %.
    pub outlier_fraction: f64,
}

impl GlobalPrediction {
    /// Mean per-frame prediction error.
    pub fn mean_frame_error(&self) -> f64 {
        mean(&self.frame_errors)
    }
}

/// Clusters every draw of the workload at once, normalising features over
/// the whole trace (per-frame normalisation would make frames
/// incomparable). Only threshold clustering is supported globally — k-means
/// over 10⁵⁺ points defeats the purpose of a cheap single pass.
///
/// # Panics
///
/// Panics if the configured method is not [`ClusterMethod::Threshold`].
pub fn cluster_workload_global(workload: &Workload, config: &SubsetConfig) -> GlobalClustering {
    let ClusterMethod::Threshold { distance } = config.method else {
        panic!("global clustering requires the threshold method");
    };
    // One matrix over all draws, with a parallel index of draw locations.
    let mut matrix = FeatureMatrix::with_capacity(config.features.clone(), workload.total_draws());
    let mut locations: Vec<DrawRef> = Vec::with_capacity(workload.total_draws());
    for (fi, frame) in workload.frames().iter().enumerate() {
        let frame_matrix = extract_frame_features(frame, workload, config.features.clone());
        for (di, row) in frame_matrix.iter_rows().enumerate() {
            matrix.push_row(row);
            locations.push((fi, di));
        }
    }
    matrix.normalize(config.normalization);
    if config.cost_weighting {
        matrix.apply_cost_weights();
    }
    let points = matrix.to_rows();
    let clustering = ThresholdClustering::new(distance).fit(&points);

    let clusters = clustering
        .members()
        .into_iter()
        .filter(|m| !m.is_empty())
        .map(|members| {
            let representative = medoid_of(&points, &members).expect("non-empty cluster");
            GlobalCluster {
                members: members.into_iter().map(|i| locations[i]).collect(),
                representative: locations[representative],
            }
        })
        .collect();
    GlobalClustering {
        clusters,
        total_draws: locations.len(),
    }
}

/// Evaluates a global clustering against ground-truth workload costs,
/// charging every draw its global representative's cost and scoring
/// per-frame errors (the paper's metric granularity).
///
/// # Panics
///
/// Panics if `costs` does not describe the same workload shape.
pub fn predict_workload_global(
    clustering: &GlobalClustering,
    costs: &WorkloadCost,
) -> GlobalPrediction {
    assert_eq!(
        clustering.total_draws,
        costs.total_draws(),
        "clustering and costs must describe the same workload"
    );
    let n_frames = costs.frames.len();
    let mut predicted = vec![0.0f64; n_frames];
    let mut outliers = 0usize;
    for cluster in &clustering.clusters {
        let (rf, rd) = cluster.representative;
        let rep_cost = costs.frames[rf].draws[rd].time_ns;
        let mut cluster_actual = 0.0;
        for &(fi, di) in &cluster.members {
            predicted[fi] += rep_cost;
            cluster_actual += costs.frames[fi].draws[di].time_ns;
        }
        let cluster_predicted = rep_cost * cluster.members.len() as f64;
        if cluster_actual > 0.0
            && (cluster_predicted - cluster_actual).abs() / cluster_actual > 0.20
        {
            outliers += 1;
        }
    }
    let frame_errors = costs
        .frames
        .iter()
        .zip(&predicted)
        .map(|(frame, &p)| {
            if frame.total_ns > 0.0 {
                (p - frame.total_ns).abs() / frame.total_ns
            } else {
                0.0
            }
        })
        .collect();
    GlobalPrediction {
        frame_errors,
        outlier_fraction: if clustering.clusters.is_empty() {
            0.0
        } else {
            outliers as f64 / clustering.clusters.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawcluster::cluster_frame;
    use subset3d_gpusim::{ArchConfig, Simulator};
    use subset3d_trace::gen::GameProfile;

    fn setup() -> (Workload, WorkloadCost) {
        let w = GameProfile::shooter("g")
            .frames(12)
            .draws_per_frame(80)
            .build(41)
            .generate();
        let cost = Simulator::new(ArchConfig::baseline())
            .simulate_workload(&w)
            .unwrap();
        (w, cost)
    }

    #[test]
    fn global_clusters_partition_all_draws() {
        let (w, _) = setup();
        let g = cluster_workload_global(&w, &SubsetConfig::default());
        let total: usize = g.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, w.total_draws());
        let mut seen = std::collections::BTreeSet::new();
        for c in &g.clusters {
            assert!(c.members.contains(&c.representative));
            for &m in &c.members {
                assert!(seen.insert(m), "{m:?} in two clusters");
            }
        }
    }

    #[test]
    fn global_efficiency_beats_per_frame() {
        let (w, _) = setup();
        let config = SubsetConfig::default();
        let global = cluster_workload_global(&w, &config);
        let per_frame_clusters: usize = w
            .frames()
            .iter()
            .map(|f| cluster_frame(f, &w, &config).cluster_count())
            .sum();
        assert!(
            global.cluster_count() < per_frame_clusters,
            "global {} should need fewer sims than per-frame {}",
            global.cluster_count(),
            per_frame_clusters
        );
        assert!(global.efficiency() > 0.5);
    }

    #[test]
    fn global_prediction_error_is_bounded() {
        let (w, cost) = setup();
        let g = cluster_workload_global(&w, &SubsetConfig::default());
        let p = predict_workload_global(&g, &cost);
        assert_eq!(p.frame_errors.len(), w.frames().len());
        assert!(
            p.mean_frame_error() < 0.25,
            "error {}",
            p.mean_frame_error()
        );
        assert!((0.0..=1.0).contains(&p.outlier_fraction));
    }

    #[test]
    fn deterministic() {
        let (w, _) = setup();
        let a = cluster_workload_global(&w, &SubsetConfig::default());
        let b = cluster_workload_global(&w, &SubsetConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "threshold method")]
    fn non_threshold_method_rejected() {
        let (w, _) = setup();
        let config = SubsetConfig::default()
            .with_cluster_method(crate::config::ClusterMethod::KMeansFixed { k: 4 });
        cluster_workload_global(&w, &config);
    }

    #[test]
    #[should_panic(expected = "same workload")]
    fn mismatched_costs_rejected() {
        let (w, _) = setup();
        let g = cluster_workload_global(&w, &SubsetConfig::default());
        let other = GameProfile::shooter("o")
            .frames(2)
            .draws_per_frame(10)
            .build(1)
            .generate();
        let cost = Simulator::new(ArchConfig::baseline())
            .simulate_workload(&other)
            .unwrap();
        predict_workload_global(&g, &cost);
    }
}
