//! The end-to-end subsetting pipeline.

use crate::config::SubsetConfig;
use crate::drawcluster::{cluster_frame, FrameClustering};
use crate::error::SubsetError;
use crate::outlier::outlier_fraction;
use crate::pattern::PhasePattern;
use crate::phase::{PhaseAnalysis, PhaseDetector};
use crate::predict::{predict_frame, FramePrediction};
use crate::subset::WorkloadSubset;
use serde::{Deserialize, Serialize};
use subset3d_gpusim::Simulator;
use subset3d_obs::LazyHistogram;
use subset3d_stats::{mean, mean_iter};
use subset3d_trace::Workload;

// Wall time per pipeline stage; `pipeline.total_ns` spans one whole
// `Subsetter::run`, the rest partition it (modulo glue code).
static OBS_TOTAL: LazyHistogram = LazyHistogram::new("pipeline.total_ns");
static OBS_CLUSTERING: LazyHistogram = LazyHistogram::new("pipeline.clustering_ns");
static OBS_EVALUATION: LazyHistogram = LazyHistogram::new("pipeline.evaluation_ns");
static OBS_PHASES: LazyHistogram = LazyHistogram::new("pipeline.phase_detection_ns");
static OBS_SUBSET: LazyHistogram = LazyHistogram::new("pipeline.subset_build_ns");

/// Per-workload clustering evaluation: the paper's Table-2 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEvaluation {
    /// Per-frame prediction results, in trace order.
    pub frames: Vec<FramePrediction>,
    /// Per-frame clustering efficiencies, in trace order.
    pub efficiencies: Vec<f64>,
}

impl WorkloadEvaluation {
    /// Average per-frame performance-prediction error (paper target ≈ 1 %).
    pub fn mean_prediction_error(&self) -> f64 {
        mean_iter(self.frames.iter().map(FramePrediction::error))
    }

    /// Average clustering efficiency (paper target ≈ 65.8 %).
    pub fn mean_efficiency(&self) -> f64 {
        mean(&self.efficiencies)
    }

    /// Fraction of clusters that are outliers (paper target ≈ 3 %).
    pub fn outlier_fraction(&self) -> f64 {
        outlier_fraction(&self.frames)
    }
}

/// Compact, serialisable summary of a pipeline run — the machine-readable
/// counterpart of the experiment tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeSummary {
    /// Name of the subset workload's parent.
    pub workload: String,
    /// Parent frame count.
    pub frames: usize,
    /// Parent draw count.
    pub draws: usize,
    /// Average per-frame clustering efficiency.
    pub mean_efficiency: f64,
    /// Average per-frame prediction error.
    pub mean_prediction_error: f64,
    /// Fraction of outlier clusters (>20 % intra-cluster error).
    pub outlier_fraction: f64,
    /// Number of detected phases.
    pub phase_count: usize,
    /// Fraction of intervals covered by repeating phases.
    pub repeat_coverage: f64,
    /// Draws kept in the subset.
    pub subset_draws: usize,
    /// Subset size as a fraction of parent draws.
    pub subset_fraction: f64,
}

/// Everything the pipeline produces for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsettingOutcome {
    /// Per-frame clusterings.
    pub clusterings: Vec<FrameClustering>,
    /// Clustering-quality evaluation.
    pub evaluation: WorkloadEvaluation,
    /// Detected phases.
    pub phases: PhaseAnalysis,
    /// Repeating-pattern summary of the phase sequence.
    pub pattern: PhasePattern,
    /// The extracted subset.
    pub subset: WorkloadSubset,
}

impl SubsettingOutcome {
    /// Condenses the outcome into the serialisable [`OutcomeSummary`].
    pub fn summary(&self, workload: &Workload) -> OutcomeSummary {
        OutcomeSummary {
            workload: workload.name.clone(),
            frames: workload.frames().len(),
            draws: workload.total_draws(),
            mean_efficiency: self.evaluation.mean_efficiency(),
            mean_prediction_error: self.evaluation.mean_prediction_error(),
            outlier_fraction: self.evaluation.outlier_fraction(),
            phase_count: self.phases.phase_count(),
            repeat_coverage: self.phases.repeat_coverage(),
            subset_draws: self.subset.selected_draw_count(),
            subset_fraction: self.subset.draw_fraction(),
        }
    }
}

/// The end-to-end subsetting pipeline: cluster every frame, evaluate
/// prediction quality, detect phases, and assemble the subset.
///
/// Frames are clustered in parallel (they are independent); everything is
/// deterministic for a given configuration.
#[derive(Debug, Clone)]
pub struct Subsetter {
    config: SubsetConfig,
}

impl Subsetter {
    /// Creates a pipeline with a configuration.
    pub fn new(config: SubsetConfig) -> Self {
        Subsetter { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SubsetConfig {
        &self.config
    }

    /// Runs the pipeline on a workload using `sim` as the ground-truth cost
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`SubsetError::InvalidConfig`] for inconsistent
    /// configurations, [`SubsetError::EmptyWorkload`] for empty traces, and
    /// propagates simulator errors.
    pub fn run(
        &self,
        workload: &Workload,
        sim: &Simulator,
    ) -> Result<SubsettingOutcome, SubsetError> {
        self.config.validate()?;
        if workload.frames().is_empty() {
            return Err(SubsetError::EmptyWorkload);
        }
        let _total = subset3d_obs::span(&OBS_TOTAL);
        let _t_total = subset3d_obs::trace_span_arg(
            "pipeline",
            "pipeline.run",
            "frames",
            workload.frames().len() as u64,
        );

        let clustering_span = subset3d_obs::span(&OBS_CLUSTERING);
        let t_clustering = subset3d_obs::trace_span("pipeline", "pipeline.clustering");
        let clusterings = self.cluster_all_frames(workload);
        t_clustering.end();
        clustering_span.end();

        // Ground-truth frame costs and prediction quality (sequential: the
        // analytical simulator is far cheaper than clustering).
        let evaluation_span = subset3d_obs::span(&OBS_EVALUATION);
        let t_evaluation = subset3d_obs::trace_span("pipeline", "pipeline.evaluation");
        let mut frames = Vec::with_capacity(workload.frames().len());
        let mut efficiencies = Vec::with_capacity(workload.frames().len());
        for (frame, clustering) in workload.frames().iter().zip(&clusterings) {
            let t_frame = subset3d_obs::trace_span_arg(
                "pipeline",
                "frame.simulate",
                "frame",
                u64::from(frame.id.raw()),
            );
            // Empty frames skip feature extraction (no flow start to pair).
            if !frame.is_empty() {
                subset3d_obs::trace_flow_end("pipeline", "frame.link", u64::from(frame.id.raw()));
            }
            let cost = sim.simulate_frame(frame, workload)?;
            t_frame.end();
            frames.push(predict_frame(clustering, &cost));
            efficiencies.push(clustering.efficiency());
        }
        let evaluation = WorkloadEvaluation {
            frames,
            efficiencies,
        };
        t_evaluation.end();
        evaluation_span.end();

        let phase_span = subset3d_obs::span(&OBS_PHASES);
        let t_phases = subset3d_obs::trace_span("pipeline", "pipeline.phase_detection");
        let phases = PhaseDetector::new(self.config.interval_len)
            .with_similarity(self.config.phase_similarity)
            .detect(workload)?;
        let pattern = PhasePattern::of(&phases);
        t_phases.end();
        phase_span.end();

        let subset_span = subset3d_obs::span(&OBS_SUBSET);
        let t_subset = subset3d_obs::trace_span("pipeline", "pipeline.subset_build");
        let subset = WorkloadSubset::build(
            workload,
            &phases,
            &clusterings,
            self.config.frames_per_phase,
        );
        t_subset.end();
        subset_span.end();

        Ok(SubsettingOutcome {
            clusterings,
            evaluation,
            phases,
            pattern,
            subset,
        })
    }

    /// Fits the configured backend over the workload's per-frame feature
    /// points ([`crate::frame_feature_point`]): one point per frame, one
    /// partition of the frames, one representative frame per cluster.
    ///
    /// This is the batch counterpart of the streaming session's global fit
    /// — the differential oracle's reference. A session that ingests the
    /// same frames in the same order with a reservoir at least as large as
    /// the workload produces a bit-identical fit.
    ///
    /// # Errors
    ///
    /// Returns [`SubsetError::InvalidConfig`] for inconsistent
    /// configurations and [`SubsetError::EmptyWorkload`] for empty traces.
    pub fn global_fit(
        &self,
        workload: &Workload,
    ) -> Result<subset3d_cluster::SubsetterFit, SubsetError> {
        self.config.validate()?;
        if workload.frames().is_empty() {
            return Err(SubsetError::EmptyWorkload);
        }
        let points: Vec<Vec<f64>> = workload
            .frames()
            .iter()
            .map(|frame| crate::drawcluster::frame_feature_point(frame, workload, &self.config))
            .collect();
        Ok(crate::drawcluster::subsetter_for(&self.config.method, self.config.seed).fit(&points))
    }

    /// Clusters every frame, in parallel on the shared [`subset3d_exec`]
    /// pool. Results are in frame order and identical at any thread count.
    fn cluster_all_frames(&self, workload: &Workload) -> Vec<FrameClustering> {
        subset3d_exec::par_map_indexed(workload.frames(), |_, frame| {
            let _t = subset3d_obs::trace_span_arg(
                "pipeline",
                "frame.cluster",
                "frame",
                u64::from(frame.id.raw()),
            );
            cluster_frame(frame, workload, &self.config)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subset3d_gpusim::ArchConfig;
    use subset3d_trace::gen::GameProfile;

    fn workload() -> Workload {
        GameProfile::shooter("t")
            .frames(30)
            .draws_per_frame(60)
            .build(23)
            .generate()
    }

    #[test]
    fn full_pipeline_runs() {
        let w = workload();
        let sim = Simulator::new(ArchConfig::baseline());
        let outcome = Subsetter::new(SubsetConfig::default())
            .run(&w, &sim)
            .unwrap();
        assert_eq!(outcome.clusterings.len(), w.frames().len());
        assert_eq!(outcome.evaluation.frames.len(), w.frames().len());
        assert!(outcome.evaluation.mean_efficiency() > 0.0);
        assert!(outcome.evaluation.mean_prediction_error() < 0.3);
        assert!(outcome.phases.phase_count() > 0);
        outcome.subset.validate(&w).unwrap();
    }

    #[test]
    fn outcome_summary_is_consistent_and_serialisable() {
        let w = workload();
        let sim = Simulator::new(ArchConfig::baseline());
        let outcome = Subsetter::new(SubsetConfig::default())
            .run(&w, &sim)
            .unwrap();
        let summary = outcome.summary(&w);
        assert_eq!(summary.frames, w.frames().len());
        assert_eq!(summary.draws, w.total_draws());
        assert_eq!(summary.subset_draws, outcome.subset.selected_draw_count());
        assert!((summary.subset_fraction - outcome.subset.draw_fraction()).abs() < 1e-12);
        let json = serde_json::to_string(&summary).unwrap();
        let back: OutcomeSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(summary, back);
    }

    #[test]
    fn parallel_clustering_matches_sequential() {
        let w = workload();
        let config = SubsetConfig::default();
        let subsetter = Subsetter::new(config.clone());
        let parallel = subsetter.cluster_all_frames(&w);
        let sequential: Vec<FrameClustering> = w
            .frames()
            .iter()
            .map(|f| cluster_frame(f, &w, &config))
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn empty_workload_rejected() {
        let w = Workload::new(
            "empty",
            Vec::new(),
            Default::default(),
            Default::default(),
            Default::default(),
        );
        let sim = Simulator::new(ArchConfig::baseline());
        assert_eq!(
            Subsetter::new(SubsetConfig::default()).run(&w, &sim),
            Err(SubsetError::EmptyWorkload)
        );
    }

    #[test]
    fn invalid_config_rejected_before_work() {
        let w = workload();
        let sim = Simulator::new(ArchConfig::baseline());
        let bad = SubsetConfig::default().with_interval_len(0);
        assert!(matches!(
            Subsetter::new(bad).run(&w, &sim),
            Err(SubsetError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn global_fit_partitions_frames() {
        let w = workload();
        let subsetter = Subsetter::new(SubsetConfig::default());
        let fit = subsetter.global_fit(&w).unwrap();
        fit.check(w.frames().len()).unwrap();
        assert!(!fit.representatives.is_empty());
        assert!(fit.representatives.len() <= w.frames().len());
        // Deterministic: same config, same workload, same fit.
        assert_eq!(fit, subsetter.global_fit(&w).unwrap());
    }

    #[test]
    fn global_fit_rejects_empty_workload() {
        let w = Workload::new(
            "empty",
            Vec::new(),
            Default::default(),
            Default::default(),
            Default::default(),
        );
        assert_eq!(
            Subsetter::new(SubsetConfig::default()).global_fit(&w),
            Err(SubsetError::EmptyWorkload)
        );
    }

    #[test]
    fn deterministic_outcome() {
        let w = workload();
        let sim = Simulator::new(ArchConfig::baseline());
        let a = Subsetter::new(SubsetConfig::default())
            .run(&w, &sim)
            .unwrap();
        let b = Subsetter::new(SubsetConfig::default())
            .run(&w, &sim)
            .unwrap();
        assert_eq!(a, b);
    }
}
