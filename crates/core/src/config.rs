//! Pipeline configuration.

use crate::error::SubsetError;
use serde::{Deserialize, Serialize};
use subset3d_features::{FeatureKind, Normalization};

/// How draws within a frame are clustered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterMethod {
    /// Single-pass leader clustering with a feature-space distance
    /// threshold (the production method; cluster count — and with it the
    /// clustering efficiency — emerges from the threshold).
    Threshold {
        /// Euclidean distance threshold in normalised feature space.
        distance: f64,
    },
    /// k-means with BIC model selection over `1..=max_k`.
    KMeansBic {
        /// Upper bound of the k search.
        max_k: usize,
    },
    /// k-means with a fixed cluster count (ablation baseline).
    KMeansFixed {
        /// The fixed cluster count.
        k: usize,
    },
    /// Two-phase stratified sampling: quantile strata on a cheap scalar
    /// key, proportional systematic sampling within each stratum.
    Stratified {
        /// Number of strata.
        strata: usize,
        /// Within-stratum sampling rate in `(0, 1]`.
        rate: f64,
    },
    /// Power-iteration PCA projection followed by average-linkage
    /// agglomerative merging to a target cluster count.
    PcaAgglo {
        /// Principal components to keep.
        components: usize,
        /// Target cluster count per frame.
        clusters: usize,
    },
}

/// Configuration of the full subsetting pipeline.
///
/// # Examples
///
/// ```
/// use subset3d_core::{ClusterMethod, SubsetConfig};
///
/// let config = SubsetConfig::default()
///     .with_cluster_method(ClusterMethod::Threshold { distance: 0.8 })
///     .with_interval_len(8);
/// assert_eq!(config.interval_len, 8);
/// config.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsetConfig {
    /// MAI features used for clustering.
    pub features: Vec<FeatureKind>,
    /// Per-frame feature normalisation.
    pub normalization: Normalization,
    /// Clustering method.
    pub method: ClusterMethod,
    /// Frames per phase-detection interval.
    pub interval_len: usize,
    /// Shader-vector similarity required for two intervals to share a
    /// phase: `1.0` is the paper's exact-equality criterion; slightly lower
    /// values tolerate rare stochastic shaders.
    pub phase_similarity: f64,
    /// Representative frames kept per detected phase.
    pub frames_per_phase: usize,
    /// Whether to scale normalised features by their cost weights before
    /// clustering (improves the error-vs-efficiency frontier; ablated in
    /// E9).
    pub cost_weighting: bool,
    /// When set, project normalised features onto this many principal
    /// components before clustering (the dimensionality study, E13).
    pub pca_components: Option<usize>,
    /// Seed for the clustering algorithms that need one.
    pub seed: u64,
}

impl SubsetConfig {
    /// Replaces the clustering method.
    pub fn with_cluster_method(mut self, method: ClusterMethod) -> Self {
        self.method = method;
        self
    }

    /// Replaces the feature set.
    pub fn with_features(mut self, features: Vec<FeatureKind>) -> Self {
        self.features = features;
        self
    }

    /// Replaces the normalisation.
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Replaces the phase-interval length.
    pub fn with_interval_len(mut self, frames: usize) -> Self {
        self.interval_len = frames;
        self
    }

    /// Replaces the phase-matching similarity threshold.
    pub fn with_phase_similarity(mut self, similarity: f64) -> Self {
        self.phase_similarity = similarity;
        self
    }

    /// Replaces the representative-frame count per phase.
    pub fn with_frames_per_phase(mut self, frames: usize) -> Self {
        self.frames_per_phase = frames;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables cost-weighted features.
    pub fn with_cost_weighting(mut self, enabled: bool) -> Self {
        self.cost_weighting = enabled;
        self
    }

    /// Enables PCA projection onto `components` dimensions before
    /// clustering (`None` disables).
    pub fn with_pca(mut self, components: Option<usize>) -> Self {
        self.pca_components = components;
        self
    }

    /// Checks configuration consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SubsetError::InvalidConfig`] for empty feature sets, zero
    /// intervals, zero frames-per-phase, or degenerate method parameters.
    pub fn validate(&self) -> Result<(), SubsetError> {
        let fail = |reason: &str| {
            Err(SubsetError::InvalidConfig {
                reason: reason.to_string(),
            })
        };
        if self.features.is_empty() {
            return fail("feature set is empty");
        }
        if self.interval_len == 0 {
            return fail("interval length must be at least one frame");
        }
        if self.frames_per_phase == 0 {
            return fail("frames per phase must be at least one");
        }
        if !(self.phase_similarity > 0.0 && self.phase_similarity <= 1.0) {
            return fail("phase similarity must be in (0, 1]");
        }
        if let Some(k) = self.pca_components {
            if k == 0 || k > self.features.len() {
                return fail("pca components must be in 1..=feature count");
            }
        }
        match self.method {
            ClusterMethod::Threshold { distance } => {
                if distance.is_nan() || distance < 0.0 {
                    return fail("threshold distance must be non-negative");
                }
            }
            ClusterMethod::KMeansBic { max_k } => {
                if max_k == 0 {
                    return fail("max_k must be positive");
                }
            }
            ClusterMethod::KMeansFixed { k } => {
                if k == 0 {
                    return fail("k must be positive");
                }
            }
            ClusterMethod::Stratified { strata, rate } => {
                if strata == 0 {
                    return fail("strata must be positive");
                }
                if !(rate > 0.0 && rate <= 1.0) {
                    return fail("stratified rate must be in (0, 1]");
                }
            }
            ClusterMethod::PcaAgglo {
                components,
                clusters,
            } => {
                if components == 0 {
                    return fail("pca-agglo components must be positive");
                }
                if clusters == 0 {
                    return fail("pca-agglo clusters must be positive");
                }
            }
        }
        Ok(())
    }
}

impl Default for SubsetConfig {
    /// The paper-style default: the full MAI feature set, per-frame z-score
    /// normalisation, threshold clustering calibrated to land near the
    /// paper's 65.8 % average clustering efficiency, 10-frame phase
    /// intervals and one representative frame per phase.
    fn default() -> Self {
        SubsetConfig {
            features: FeatureKind::standard_set(),
            normalization: Normalization::ZScore,
            method: ClusterMethod::Threshold { distance: 1.02 },
            interval_len: 10,
            phase_similarity: 0.85,
            frames_per_phase: 1,
            cost_weighting: true,
            pca_components: None,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SubsetConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = SubsetConfig::default().with_features(Vec::new());
        assert!(bad.validate().is_err());
        let bad = SubsetConfig::default().with_interval_len(0);
        assert!(bad.validate().is_err());
        let bad = SubsetConfig::default().with_frames_per_phase(0);
        assert!(bad.validate().is_err());
        let bad = SubsetConfig::default()
            .with_cluster_method(ClusterMethod::Threshold { distance: f64::NAN });
        assert!(bad.validate().is_err());
        let bad =
            SubsetConfig::default().with_cluster_method(ClusterMethod::KMeansBic { max_k: 0 });
        assert!(bad.validate().is_err());
        let bad = SubsetConfig::default().with_cluster_method(ClusterMethod::KMeansFixed { k: 0 });
        assert!(bad.validate().is_err());
        let bad = SubsetConfig::default().with_cluster_method(ClusterMethod::Stratified {
            strata: 0,
            rate: 0.1,
        });
        assert!(bad.validate().is_err());
        let bad = SubsetConfig::default().with_cluster_method(ClusterMethod::Stratified {
            strata: 4,
            rate: 1.5,
        });
        assert!(bad.validate().is_err());
        let bad = SubsetConfig::default().with_cluster_method(ClusterMethod::PcaAgglo {
            components: 0,
            clusters: 8,
        });
        assert!(bad.validate().is_err());
        let bad = SubsetConfig::default().with_cluster_method(ClusterMethod::PcaAgglo {
            components: 4,
            clusters: 0,
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn new_methods_validate_and_round_trip() {
        let strat = SubsetConfig::default().with_cluster_method(ClusterMethod::Stratified {
            strata: 8,
            rate: 0.1,
        });
        strat.validate().unwrap();
        let agglo = SubsetConfig::default().with_cluster_method(ClusterMethod::PcaAgglo {
            components: 4,
            clusters: 16,
        });
        agglo.validate().unwrap();
        for config in [strat, agglo] {
            let json = serde_json::to_string(&config).unwrap();
            let back: SubsetConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, config);
        }
    }

    #[test]
    fn builder_style_updates() {
        let c = SubsetConfig::default()
            .with_interval_len(5)
            .with_frames_per_phase(2)
            .with_seed(9);
        assert_eq!(c.interval_len, 5);
        assert_eq!(c.frames_per_phase, 2);
        assert_eq!(c.seed, 9);
    }
}
