//! Repeating-pattern extraction from phase sequences.

use crate::phase::PhaseAnalysis;
use serde::{Deserialize, Serialize};

/// The repetitive structure of a workload's phase sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePattern {
    /// Run-length encoding of the phase sequence: `(phase id, run length)`.
    pub runs: Vec<(usize, usize)>,
    /// Number of phases that occur in more than one run (true temporal
    /// repetition, not just adjacency).
    pub recurring_phases: usize,
    /// Total number of distinct phases.
    pub total_phases: usize,
}

impl PhasePattern {
    /// Extracts the pattern from a phase analysis.
    ///
    /// # Examples
    ///
    /// ```
    /// use subset3d_core::{PhaseDetector, PhasePattern};
    /// use subset3d_trace::gen::GameProfile;
    ///
    /// let w = GameProfile::racing("g").frames(60).draws_per_frame(30).build(2).generate();
    /// let analysis = PhaseDetector::new(5).with_similarity(0.85).detect(&w)?;
    /// let pattern = PhasePattern::of(&analysis);
    /// assert!(pattern.runs.len() >= pattern.total_phases);
    /// # Ok::<(), subset3d_core::SubsetError>(())
    /// ```
    pub fn of(analysis: &PhaseAnalysis) -> Self {
        let sequence = analysis.sequence();
        let mut runs: Vec<(usize, usize)> = Vec::new();
        for &p in sequence {
            match runs.last_mut() {
                Some((phase, len)) if *phase == p => *len += 1,
                _ => runs.push((p, 1)),
            }
        }
        let mut run_counts = vec![0usize; analysis.phase_count()];
        for &(p, _) in &runs {
            run_counts[p] += 1;
        }
        PhasePattern {
            recurring_phases: run_counts.iter().filter(|&&c| c > 1).count(),
            total_phases: analysis.phase_count(),
            runs,
        }
    }

    /// Whether the workload exhibits temporal repetition: some phase leaves
    /// and comes back (the paper's claim for each BioShock game).
    pub fn has_recurrence(&self) -> bool {
        self.recurring_phases > 0
    }

    /// Mean run length in intervals.
    pub fn mean_run_length(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let total: usize = self.runs.iter().map(|&(_, len)| len).sum();
        total as f64 / self.runs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::FrameInterval;
    use crate::phase::{Phase, PhaseAnalysis};
    use crate::shader_vector::ShaderVector;

    fn analysis_from_sequence(seq: &[usize]) -> PhaseAnalysis {
        let phase_count = seq.iter().copied().max().map_or(0, |m| m + 1);
        let phases = (0..phase_count)
            .map(|id| Phase {
                id,
                signature: ShaderVector::new(),
                intervals: seq
                    .iter()
                    .enumerate()
                    .filter(|(_, &p)| p == id)
                    .map(|(i, _)| i)
                    .collect(),
                representative: seq.iter().position(|&p| p == id).unwrap_or(0),
            })
            .collect();
        PhaseAnalysis {
            intervals: (0..seq.len())
                .map(|i| FrameInterval { start: i, len: 1 })
                .collect(),
            interval_phase: seq.to_vec(),
            phases,
        }
    }

    #[test]
    fn rle_compresses_adjacent_runs() {
        let p = PhasePattern::of(&analysis_from_sequence(&[0, 0, 1, 1, 1, 0]));
        assert_eq!(p.runs, vec![(0, 2), (1, 3), (0, 1)]);
        assert_eq!(p.total_phases, 2);
    }

    #[test]
    fn recurrence_requires_departure_and_return() {
        // 0 appears twice but only adjacent: one run. 0,1,0 recurs.
        let adjacent = PhasePattern::of(&analysis_from_sequence(&[0, 0, 1]));
        assert!(!adjacent.has_recurrence());
        let returning = PhasePattern::of(&analysis_from_sequence(&[0, 1, 0]));
        assert!(returning.has_recurrence());
        assert_eq!(returning.recurring_phases, 1);
    }

    #[test]
    fn mean_run_length() {
        let p = PhasePattern::of(&analysis_from_sequence(&[0, 0, 0, 1]));
        assert_eq!(p.mean_run_length(), 2.0);
        let empty = PhasePattern::of(&analysis_from_sequence(&[]));
        assert_eq!(empty.mean_run_length(), 0.0);
    }

    #[test]
    fn shooter_workload_recurs() {
        use subset3d_trace::gen::GameProfile;
        let w = GameProfile::shooter("t")
            .frames(120)
            .draws_per_frame(60)
            .build(13)
            .generate();
        let analysis = crate::PhaseDetector::new(5)
            .with_similarity(0.85)
            .detect(&w)
            .unwrap();
        let pattern = PhasePattern::of(&analysis);
        assert!(pattern.has_recurrence(), "runs: {:?}", pattern.runs);
    }
}
