//! Plain-text table rendering for the experiment harness.

/// A simple fixed-width text table: the output format of every experiment
/// binary (one per paper table/figure).
///
/// # Examples
///
/// ```
/// use subset3d_core::Table;
///
/// let mut t = Table::new(vec!["game", "frames"]);
/// t.row(vec!["shock-1".to_string(), "120".to_string()]);
/// let text = t.render();
/// assert!(text.contains("shock-1"));
/// assert!(text.contains("game"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting of cells containing
    /// commas, quotes or newlines), for piping experiment output into
    /// plotting tools.
    pub fn render_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let render = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&quote(c));
            }
            out.push('\n');
        };
        render(&self.headers, &mut out);
        for row in &self.rows {
            render(row, &mut out);
        }
        out
    }

    /// Renders the table with aligned columns and a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[c] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The 'bbbb' header starts at the same offset as '1' and '22'.
        let header_off = lines[0].find("bbbb").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), header_off);
        assert_eq!(lines[3].find("22").unwrap(), header_off);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["plain".into(), "has,comma".into()]);
        t.row(vec!["has\"quote".into(), "multi\nline".into()]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.split('\n').collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"has,comma\"");
        assert!(lines[2].starts_with("\"has\"\"quote\""));
    }

    #[test]
    fn csv_of_empty_table_is_header_only() {
        let t = Table::new(vec!["x"]);
        assert_eq!(t.render_csv(), "x\n");
    }

    #[test]
    fn empty_table_renders_header() {
        let t = Table::new(vec!["only"]);
        assert!(t.is_empty());
        assert!(t.render().starts_with("only"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_rejected() {
        Table::new(vec!["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        Table::new(Vec::<String>::new());
    }
}
