//! Subset validation: does the subset respond to architecture changes like
//! its parent?

use crate::error::SubsetError;
use crate::subset::WorkloadSubset;
use serde::{Deserialize, Serialize};
use subset3d_gpusim::{ArchConfig, FrequencySweep, Simulator};
use subset3d_stats::{pearson, rank_agreement};
use subset3d_trace::Workload;

/// Result of the frequency-scaling validation (paper: correlation ≥ 99.7 %).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingValidation {
    /// Swept core clocks in MHz.
    pub points_mhz: Vec<f64>,
    /// Parent workload performance improvement per point (relative to the
    /// first point).
    pub parent_improvement: Vec<f64>,
    /// Subset performance improvement per point.
    pub subset_improvement: Vec<f64>,
    /// Pearson correlation between the two improvement series.
    pub correlation: f64,
}

/// Sweeps GPU core frequency and correlates the parent's performance
/// improvement with the subset's — the paper's headline validation.
///
/// # Errors
///
/// Propagates simulator and subset errors; also fails when the sweep has
/// fewer than two points (correlation undefined).
///
/// # Examples
///
/// ```
/// use subset3d_core::{frequency_scaling_validation, SubsetConfig, Subsetter};
/// use subset3d_gpusim::{ArchConfig, FrequencySweep, Simulator};
/// use subset3d_trace::gen::GameProfile;
///
/// let w = GameProfile::shooter("g").frames(20).draws_per_frame(40).build(3).generate();
/// let sim = Simulator::new(ArchConfig::baseline());
/// let outcome = Subsetter::new(SubsetConfig::default()).run(&w, &sim)?;
/// let sweep = FrequencySweep::new(vec![500.0, 800.0, 1100.0]);
/// let validation =
///     frequency_scaling_validation(&w, &outcome.subset, &ArchConfig::baseline(), &sweep)?;
/// assert!(validation.correlation > 0.9);
/// # Ok::<(), subset3d_core::SubsetError>(())
/// ```
pub fn frequency_scaling_validation(
    workload: &Workload,
    subset: &WorkloadSubset,
    base: &ArchConfig,
    sweep: &FrequencySweep,
) -> Result<ScalingValidation, SubsetError> {
    let mut parent_times = Vec::with_capacity(sweep.len());
    let mut subset_times = Vec::with_capacity(sweep.len());
    for (i, config) in sweep.configs(base).into_iter().enumerate() {
        let _t = subset3d_obs::trace_span_arg("gpusim", "sweep.candidate", "index", i as u64);
        let sim = Simulator::new(config);
        parent_times.push(sim.simulate_workload(workload)?.total_ns);
        subset_times.push(subset.replay(workload, &sim)?);
    }
    let parent_improvement = FrequencySweep::improvement_series(&parent_times);
    let subset_improvement = FrequencySweep::improvement_series(&subset_times);
    let correlation = pearson(&parent_improvement, &subset_improvement).map_err(|e| {
        SubsetError::InvalidConfig {
            reason: format!("scaling correlation undefined: {e}"),
        }
    })?;
    Ok(ScalingValidation {
        points_mhz: sweep.points_mhz().to_vec(),
        parent_improvement,
        subset_improvement,
        correlation,
    })
}

/// Ranks candidate architectures by parent simulation and by subset replay,
/// returning `(parent times, subset estimates, rank agreement)` where rank
/// agreement is the fraction of rank positions on which the two orderings
/// agree (`1.0` = the subset picks the same winner ordering).
///
/// # Errors
///
/// Propagates simulator and subset errors; fails for fewer than two
/// candidates.
pub fn pathfinding_rank_validation(
    workload: &Workload,
    subset: &WorkloadSubset,
    candidates: &[ArchConfig],
) -> Result<(Vec<f64>, Vec<f64>, f64), SubsetError> {
    let mut parent = Vec::with_capacity(candidates.len());
    let mut estimate = Vec::with_capacity(candidates.len());
    for (i, config) in candidates.iter().enumerate() {
        let _t = subset3d_obs::trace_span_arg("gpusim", "sweep.candidate", "index", i as u64);
        let sim = Simulator::new(config.clone());
        parent.push(sim.simulate_workload(workload)?.total_ns);
        estimate.push(subset.replay(workload, &sim)?);
    }
    let agreement = rank_agreement(&parent, &estimate).map_err(|e| SubsetError::InvalidConfig {
        reason: format!("rank agreement undefined: {e}"),
    })?;
    Ok((parent, estimate, agreement))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SubsetConfig;
    use crate::pipeline::Subsetter;
    use subset3d_trace::gen::GameProfile;

    fn setup() -> (Workload, WorkloadSubset) {
        let w = GameProfile::shooter("t")
            .frames(30)
            .draws_per_frame(80)
            .build(19)
            .generate();
        let sim = Simulator::new(ArchConfig::baseline());
        let outcome = Subsetter::new(SubsetConfig::default())
            .run(&w, &sim)
            .unwrap();
        (w, outcome.subset)
    }

    #[test]
    fn scaling_correlation_is_high() {
        let (w, subset) = setup();
        let sweep = FrequencySweep::new(vec![400.0, 700.0, 1000.0, 1300.0]);
        let v = frequency_scaling_validation(&w, &subset, &ArchConfig::baseline(), &sweep).unwrap();
        assert_eq!(v.parent_improvement.len(), 4);
        assert_eq!(v.parent_improvement[0], 1.0);
        assert!(v.correlation > 0.99, "correlation {}", v.correlation);
        // Improvements are monotone with clock for both series.
        assert!(v.parent_improvement.windows(2).all(|x| x[1] >= x[0]));
        assert!(v.subset_improvement.windows(2).all(|x| x[1] >= x[0]));
    }

    #[test]
    fn single_point_sweep_errors() {
        let (w, subset) = setup();
        let sweep = FrequencySweep::new(vec![1000.0]);
        assert!(matches!(
            frequency_scaling_validation(&w, &subset, &ArchConfig::baseline(), &sweep),
            Err(SubsetError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn rank_validation_agrees_mostly() {
        let (w, subset) = setup();
        let (parent, estimate, agreement) =
            pathfinding_rank_validation(&w, &subset, &ArchConfig::pathfinding_candidates())
                .unwrap();
        assert_eq!(parent.len(), 6);
        assert_eq!(estimate.len(), 6);
        assert!(agreement >= 0.5, "agreement {agreement}");
    }
}
