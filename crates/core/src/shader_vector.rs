//! Shader vectors: the phase signature of frames and intervals.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use subset3d_trace::{Frame, ShaderId};

/// The set of shader programs a frame (or interval of frames) uses.
///
/// The paper characterises frame intervals with shader vectors and declares
/// two intervals to belong to the same phase when their vectors are
/// *equal*: a level revisit replays the same materials and therefore the
/// same shaders, even though draw counts and geometry differ.
///
/// # Examples
///
/// ```
/// use subset3d_core::ShaderVector;
/// use subset3d_trace::gen::GameProfile;
///
/// let w = GameProfile::shooter("g").frames(4).draws_per_frame(30).build(1).generate();
/// let a = ShaderVector::of_frame(&w.frames()[0]);
/// let same = ShaderVector::of_frame(&w.frames()[0]);
/// assert_eq!(a, same);
/// assert_eq!(a.jaccard(&same), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShaderVector {
    shaders: BTreeSet<ShaderId>,
}

impl ShaderVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        ShaderVector {
            shaders: BTreeSet::new(),
        }
    }

    /// The shader vector of a single frame.
    pub fn of_frame(frame: &Frame) -> Self {
        ShaderVector {
            shaders: frame.shader_set(),
        }
    }

    /// The shader vector of an interval of frames (union of frame vectors).
    pub fn of_frames<'a>(frames: impl IntoIterator<Item = &'a Frame>) -> Self {
        let mut shaders = BTreeSet::new();
        for f in frames {
            shaders.extend(f.shader_set());
        }
        ShaderVector { shaders }
    }

    /// Number of distinct shaders in the vector.
    pub fn len(&self) -> usize {
        self.shaders.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.shaders.is_empty()
    }

    /// Whether the vector contains a shader.
    pub fn contains(&self, id: ShaderId) -> bool {
        self.shaders.contains(&id)
    }

    /// Merges another vector into this one.
    pub fn union_with(&mut self, other: &ShaderVector) {
        self.shaders.extend(other.shaders.iter().copied());
    }

    /// Jaccard similarity with another vector: `|∩| / |∪|`; `1.0` for two
    /// empty vectors.
    pub fn jaccard(&self, other: &ShaderVector) -> f64 {
        let inter = self.shaders.intersection(&other.shaders).count();
        let union = self.shaders.union(&other.shaders).count();
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Iterates over the shader ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ShaderId> + '_ {
        self.shaders.iter().copied()
    }
}

impl Default for ShaderVector {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<ShaderId> for ShaderVector {
    fn from_iter<I: IntoIterator<Item = ShaderId>>(iter: I) -> Self {
        ShaderVector {
            shaders: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(ids: &[u32]) -> ShaderVector {
        ids.iter().map(|&i| ShaderId(i)).collect()
    }

    #[test]
    fn equality_ignores_order_and_duplicates() {
        assert_eq!(sv(&[1, 2, 3]), sv(&[3, 2, 1, 2]));
    }

    #[test]
    fn jaccard_known_values() {
        let a = sv(&[1, 2, 3]);
        let b = sv(&[2, 3, 4]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(sv(&[]).jaccard(&sv(&[])), 1.0);
        assert_eq!(sv(&[1]).jaccard(&sv(&[2])), 0.0);
    }

    #[test]
    fn union_accumulates() {
        let mut a = sv(&[1, 2]);
        a.union_with(&sv(&[2, 3]));
        assert_eq!(a, sv(&[1, 2, 3]));
        assert_eq!(a.len(), 3);
        assert!(a.contains(ShaderId(3)));
        assert!(!a.contains(ShaderId(9)));
    }

    #[test]
    fn interval_vector_is_union_of_frames() {
        use subset3d_trace::gen::GameProfile;
        let w = GameProfile::shooter("g")
            .frames(6)
            .draws_per_frame(30)
            .build(2)
            .generate();
        let joint = ShaderVector::of_frames(&w.frames()[0..3]);
        for f in &w.frames()[0..3] {
            for s in f.shader_set() {
                assert!(joint.contains(s));
            }
        }
    }
}
