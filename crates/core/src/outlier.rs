//! Cluster-outlier analysis.
//!
//! The paper judges clustering quality by the fraction of *cluster
//! outliers*: clusters whose intra-cluster prediction error exceeds 20 %.
//! Its corpus average is 3.0 %.

use crate::predict::FramePrediction;

/// The paper's intra-cluster error threshold above which a cluster counts
/// as an outlier.
pub const OUTLIER_ERROR_THRESHOLD: f64 = 0.20;

/// Fraction of clusters across the given frame predictions whose
/// intra-cluster error exceeds [`OUTLIER_ERROR_THRESHOLD`].
///
/// Returns `0.0` when there are no clusters at all.
///
/// # Examples
///
/// ```
/// use subset3d_core::{outlier_fraction, FramePrediction};
///
/// let frames = vec![FramePrediction {
///     actual_ns: 10.0,
///     predicted_ns: 10.0,
///     cluster_errors: vec![0.05, 0.5, 0.1, 0.3],
/// }];
/// assert_eq!(outlier_fraction(&frames), 0.5);
/// ```
pub fn outlier_fraction(frames: &[FramePrediction]) -> f64 {
    let mut clusters = 0usize;
    let mut outliers = 0usize;
    for frame in frames {
        clusters += frame.cluster_errors.len();
        outliers += frame
            .cluster_errors
            .iter()
            .filter(|&&e| e > OUTLIER_ERROR_THRESHOLD)
            .count();
    }
    if clusters == 0 {
        0.0
    } else {
        outliers as f64 / clusters as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(errors: Vec<f64>) -> FramePrediction {
        FramePrediction {
            actual_ns: 1.0,
            predicted_ns: 1.0,
            cluster_errors: errors,
        }
    }

    #[test]
    fn no_clusters_zero() {
        assert_eq!(outlier_fraction(&[]), 0.0);
        assert_eq!(outlier_fraction(&[frame(Vec::new())]), 0.0);
    }

    #[test]
    fn threshold_is_exclusive() {
        // Exactly 20% is not an outlier.
        assert_eq!(outlier_fraction(&[frame(vec![0.20])]), 0.0);
        assert_eq!(outlier_fraction(&[frame(vec![0.2000001])]), 1.0);
    }

    #[test]
    fn aggregates_across_frames() {
        let frames = vec![frame(vec![0.1, 0.3]), frame(vec![0.05, 0.5])];
        assert_eq!(outlier_fraction(&frames), 0.5);
    }
}
