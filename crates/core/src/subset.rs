//! Workload subsets: the pipeline's product.

use crate::drawcluster::FrameClustering;
use crate::error::SubsetError;
use crate::phase::PhaseAnalysis;
use serde::{Deserialize, Serialize};
use subset3d_gpusim::{DrawCost, Simulator};
use subset3d_trace::{Frame, Workload};

/// One replayed subset frame with weighted per-draw costs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedFrame {
    /// Index of the frame within the parent workload.
    pub frame_index: usize,
    /// Phase weight of the frame.
    pub frame_weight: f64,
    /// `(cluster weight, simulated cost)` of every kept draw.
    pub draws: Vec<(f64, DrawCost)>,
}

/// Full result of [`WorkloadSubset::replay_detailed`].
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetReplay {
    /// Replayed frames in trace order.
    pub frames: Vec<ReplayedFrame>,
    /// Weighted estimate of the parent workload's total time, ns.
    pub estimated_ns: f64,
}

/// One draw kept in the subset, weighted by the cluster population it
/// represents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectedDraw {
    /// Index of the draw within its frame.
    pub draw_index: usize,
    /// Number of parent draws this draw stands for.
    pub weight: f64,
}

/// One frame kept in the subset, weighted by the phase population it
/// represents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectedFrame {
    /// Index of the frame within the parent workload.
    pub frame_index: usize,
    /// Number of parent frames this frame stands for.
    pub weight: f64,
    /// The representative draws, in submission order.
    pub draws: Vec<SelectedDraw>,
}

/// A weighted subset of a workload: representative frames (one or a few per
/// detected phase), each reduced to its cluster-representative draws.
///
/// Replaying the subset on a simulator and scaling by the weights estimates
/// the parent workload's time at a fraction of the simulation cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSubset {
    /// Name of the parent workload.
    pub workload_name: String,
    parent_frames: usize,
    parent_draws: usize,
    frames: Vec<SelectedFrame>,
}

impl WorkloadSubset {
    /// Assembles a subset from the phase analysis and per-frame
    /// clusterings: for each phase, the `frames_per_phase` most *typical*
    /// frames are selected (closest shader-usage histogram to the phase
    /// aggregate), weighted by the phase's total work, and each kept frame
    /// is reduced to its cluster representatives (weighted by cluster
    /// sizes).
    ///
    /// # Panics
    ///
    /// Panics if `clusterings` does not cover every workload frame or
    /// `frames_per_phase` is zero.
    pub fn build(
        workload: &Workload,
        phases: &PhaseAnalysis,
        clusterings: &[FrameClustering],
        frames_per_phase: usize,
    ) -> Self {
        assert!(frames_per_phase > 0, "frames per phase must be positive");
        assert_eq!(
            clusterings.len(),
            workload.frames().len(),
            "need one clustering per frame"
        );
        let mut frames = Vec::new();
        for phase in &phases.phases {
            let phase_frames: Vec<usize> = phase
                .intervals
                .iter()
                .flat_map(|&i| phases.intervals[i].frames())
                .collect();
            // A phase's intervals share shaders but not load: a revisit can
            // mix quiet exploration with heavy combat. Weighting kept
            // frames by a *cost proxy* built only from API-observable
            // quantities (shaded pixels, vertices, draw count) normalises
            // that load difference while staying µarch-independent.
            let phase_work: f64 = phase_frames
                .iter()
                .map(|&f| frame_work_proxy(workload, f))
                .sum();
            let chosen = select_typical_frames(workload, &phase_frames, frames_per_phase);
            let chosen_work: f64 = chosen.iter().map(|&f| frame_work_proxy(workload, f)).sum();
            let weight = if chosen_work == 0.0 {
                0.0
            } else {
                phase_work / chosen_work
            };
            for frame_index in chosen {
                let clustering = &clusterings[frame_index];
                let draws = clustering
                    .clusters
                    .iter()
                    .map(|c| SelectedDraw {
                        draw_index: c.representative,
                        weight: c.len() as f64,
                    })
                    .collect::<Vec<_>>();
                let mut draws = draws;
                draws.sort_by_key(|d| d.draw_index);
                frames.push(SelectedFrame {
                    frame_index,
                    weight,
                    draws,
                });
            }
        }
        frames.sort_by_key(|f| f.frame_index);
        WorkloadSubset {
            workload_name: workload.name.clone(),
            parent_frames: workload.frames().len(),
            parent_draws: workload.total_draws(),
            frames,
        }
    }

    /// The selected frames, in trace order.
    pub fn frames(&self) -> &[SelectedFrame] {
        &self.frames
    }

    /// Total draws kept in the subset (the simulations a subset replay
    /// costs).
    pub fn selected_draw_count(&self) -> usize {
        self.frames.iter().map(|f| f.draws.len()).sum()
    }

    /// Subset size as a fraction of parent draws — the paper's "< 1 % of
    /// parent workload" measure.
    pub fn draw_fraction(&self) -> f64 {
        if self.parent_draws == 0 {
            return 0.0;
        }
        self.selected_draw_count() as f64 / self.parent_draws as f64
    }

    /// Kept frames as a fraction of parent frames.
    pub fn frame_fraction(&self) -> f64 {
        if self.parent_frames == 0 {
            return 0.0;
        }
        self.frames.len() as f64 / self.parent_frames as f64
    }

    /// Replays the subset on a simulator, returning the weighted estimate
    /// of the parent workload's total time in nanoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`SubsetError::SubsetMismatch`] when the subset references
    /// frames or draws the workload does not have, and propagates simulator
    /// errors.
    pub fn replay(&self, workload: &Workload, sim: &Simulator) -> Result<f64, SubsetError> {
        Ok(self.replay_detailed(workload, sim)?.estimated_ns)
    }

    /// Replays the subset and returns the full weighted per-draw cost
    /// structure, for estimators beyond time (energy, bandwidth, stage
    /// utilisation).
    ///
    /// Each kept frame is materialised as a mini-frame of its
    /// representative draws (in submission order) so replay pays realistic
    /// cross-draw cache context, then every draw's cost is scaled by its
    /// cluster weight and the frame total by its phase weight.
    ///
    /// # Errors
    ///
    /// Returns [`SubsetError::SubsetMismatch`] when the subset references
    /// frames or draws the workload does not have, and propagates simulator
    /// errors.
    pub fn replay_detailed(
        &self,
        workload: &Workload,
        sim: &Simulator,
    ) -> Result<SubsetReplay, SubsetError> {
        let mut frames = Vec::with_capacity(self.frames.len());
        let mut total = 0.0;
        for sf in &self.frames {
            let frame = workload.frames().get(sf.frame_index).ok_or_else(|| {
                SubsetError::SubsetMismatch {
                    reason: format!("frame {} not in workload", sf.frame_index),
                }
            })?;
            let mut draws = Vec::with_capacity(sf.draws.len());
            for sd in &sf.draws {
                let draw =
                    frame
                        .draw(sd.draw_index)
                        .ok_or_else(|| SubsetError::SubsetMismatch {
                            reason: format!(
                                "draw {} not in frame {}",
                                sd.draw_index, sf.frame_index
                            ),
                        })?;
                draws.push(draw);
            }
            let mini = Frame::new(frame.id, draws);
            let cost = sim.simulate_frame(&mini, workload)?;
            let weighted: Vec<(f64, DrawCost)> = cost
                .draws
                .iter()
                .zip(&sf.draws)
                .map(|(c, sd)| (sd.weight, *c))
                .collect();
            let frame_estimate: f64 = weighted.iter().map(|(w, c)| c.time_ns * w).sum();
            total += frame_estimate * sf.weight;
            frames.push(ReplayedFrame {
                frame_index: sf.frame_index,
                frame_weight: sf.weight,
                draws: weighted,
            });
        }
        Ok(SubsetReplay {
            frames,
            estimated_ns: total,
        })
    }

    /// Consistency check against a workload: every reference resolves and
    /// weights are positive.
    ///
    /// # Errors
    ///
    /// Returns [`SubsetError::SubsetMismatch`] describing the first
    /// inconsistency found.
    pub fn validate(&self, workload: &Workload) -> Result<(), SubsetError> {
        for sf in &self.frames {
            let frame = workload.frames().get(sf.frame_index).ok_or_else(|| {
                SubsetError::SubsetMismatch {
                    reason: format!("frame {} not in workload", sf.frame_index),
                }
            })?;
            if sf.weight <= 0.0 {
                return Err(SubsetError::SubsetMismatch {
                    reason: format!("frame {} has non-positive weight", sf.frame_index),
                });
            }
            for sd in &sf.draws {
                if sd.draw_index >= frame.draw_count() {
                    return Err(SubsetError::SubsetMismatch {
                        reason: format!("draw {} not in frame {}", sd.draw_index, sf.frame_index),
                    });
                }
                if sd.weight <= 0.0 {
                    return Err(SubsetError::SubsetMismatch {
                        reason: format!(
                            "draw {} in frame {} has non-positive weight",
                            sd.draw_index, sf.frame_index
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Micro-architecture-independent per-frame work proxy: expected shaded
/// pixels plus vertex work plus a fixed per-draw overhead, in comparable
/// "pixel-equivalent" units. Purely a function of the trace.
fn frame_work_proxy(workload: &Workload, frame_index: usize) -> f64 {
    let cols = workload.frames()[frame_index].columns();
    (0..cols.len())
        .map(|i| cols.shaded_pixels_at(i) + 0.2 * cols.vertex_invocations_at(i) as f64 + 2_000.0)
        .sum()
}

/// Picks up to `count` frames that are most *typical* of a phase: the
/// frames whose per-pixel-shader draw distribution is closest (L1) to the
/// phase's aggregate distribution. Shader-usage histograms are
/// API-observable, so the selection stays micro-architecture independent.
fn select_typical_frames(workload: &Workload, phase_frames: &[usize], count: usize) -> Vec<usize> {
    use std::collections::BTreeMap;
    if phase_frames.is_empty() {
        return Vec::new();
    }
    let histogram = |frame: &Frame| {
        let mut h: BTreeMap<subset3d_trace::ShaderId, f64> = BTreeMap::new();
        for &ps in frame.columns().pixel_shaders() {
            *h.entry(ps).or_default() += 1.0;
        }
        let total: f64 = h.values().sum();
        if total > 0.0 {
            for v in h.values_mut() {
                *v /= total;
            }
        }
        h
    };
    // Phase-aggregate distribution.
    let mut aggregate: BTreeMap<subset3d_trace::ShaderId, f64> = BTreeMap::new();
    let mut total = 0.0;
    for &f in phase_frames {
        for &ps in workload.frames()[f].columns().pixel_shaders() {
            *aggregate.entry(ps).or_default() += 1.0;
            total += 1.0;
        }
    }
    if total > 0.0 {
        for v in aggregate.values_mut() {
            *v /= total;
        }
    }
    let mean_draws = total / phase_frames.len() as f64;

    let mut scored: Vec<(f64, usize)> = phase_frames
        .iter()
        .map(|&f| {
            let frame = &workload.frames()[f];
            let h = histogram(frame);
            let mut l1 = 0.0;
            for (id, &p) in &aggregate {
                l1 += (p - h.get(id).copied().unwrap_or(0.0)).abs();
            }
            for (id, &p) in &h {
                if !aggregate.contains_key(id) {
                    l1 += p;
                }
            }
            // Penalise atypical load so the kept frame also has typical
            // draw volume (volume scaling in the weight is exact, but a
            // typical frame keeps the cost-per-draw mix honest too).
            let volume = if mean_draws > 0.0 {
                ((frame.draw_count() as f64 / mean_draws).ln()).abs()
            } else {
                0.0
            };
            (l1 + 0.5 * volume, f)
        })
        .collect();
    scored.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let mut out: Vec<usize> = scored
        .into_iter()
        .take(count.max(1))
        .map(|(_, f)| f)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SubsetConfig;
    use crate::drawcluster::cluster_frame;
    use crate::phase::PhaseDetector;
    use subset3d_gpusim::ArchConfig;
    use subset3d_trace::gen::GameProfile;

    fn setup() -> (Workload, PhaseAnalysis, Vec<FrameClustering>) {
        let w = GameProfile::shooter("t")
            .frames(40)
            .draws_per_frame(60)
            .build(17)
            .generate();
        let phases = PhaseDetector::new(5)
            .with_similarity(0.85)
            .detect(&w)
            .unwrap();
        let config = SubsetConfig::default();
        let clusterings: Vec<FrameClustering> = w
            .frames()
            .iter()
            .map(|f| cluster_frame(f, &w, &config))
            .collect();
        (w, phases, clusterings)
    }

    #[test]
    fn subset_is_much_smaller_than_parent() {
        let (w, phases, clusterings) = setup();
        let subset = WorkloadSubset::build(&w, &phases, &clusterings, 1);
        assert!(subset.frame_fraction() < 0.5);
        assert!(subset.draw_fraction() < 0.5);
        assert!(subset.selected_draw_count() > 0);
        subset.validate(&w).unwrap();
    }

    #[test]
    fn weights_account_for_whole_parent() {
        let (w, phases, clusterings) = setup();
        let subset = WorkloadSubset::build(&w, &phases, &clusterings, 1);
        // Frame weights are in work-proxy units: each kept frame's weight
        // times its work proxy, summed, recovers the parent's total work.
        let weighted_work: f64 = subset
            .frames()
            .iter()
            .map(|f| f.weight * frame_work_proxy(&w, f.frame_index))
            .sum();
        let parent_work: f64 = (0..w.frames().len()).map(|f| frame_work_proxy(&w, f)).sum();
        assert!(
            (weighted_work - parent_work).abs() / parent_work < 1e-9,
            "{weighted_work} vs {parent_work}"
        );
        // Draw weights within a kept frame sum to that frame's draw count.
        for sf in subset.frames() {
            let dw: f64 = sf.draws.iter().map(|d| d.weight).sum();
            assert!((dw - w.frames()[sf.frame_index].draw_count() as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn replay_estimates_parent_time() {
        let (w, phases, clusterings) = setup();
        let subset = WorkloadSubset::build(&w, &phases, &clusterings, 1);
        let sim = Simulator::new(ArchConfig::baseline());
        let estimate = subset.replay(&w, &sim).unwrap();
        let actual = sim.simulate_workload(&w).unwrap().total_ns;
        let error = (estimate - actual).abs() / actual;
        assert!(error < 0.35, "subset estimate off by {:.1}%", error * 100.0);
    }

    #[test]
    fn more_frames_per_phase_grows_subset() {
        let (w, phases, clusterings) = setup();
        let one = WorkloadSubset::build(&w, &phases, &clusterings, 1);
        let three = WorkloadSubset::build(&w, &phases, &clusterings, 3);
        assert!(three.frames().len() >= one.frames().len());
        assert!(three.draw_fraction() >= one.draw_fraction());
        three.validate(&w).unwrap();
    }

    #[test]
    fn replay_on_wrong_workload_is_mismatch() {
        let (w, phases, clusterings) = setup();
        let subset = WorkloadSubset::build(&w, &phases, &clusterings, 1);
        let tiny = GameProfile::shooter("other")
            .frames(2)
            .draws_per_frame(5)
            .build(1)
            .generate();
        let sim = Simulator::new(ArchConfig::baseline());
        assert!(matches!(
            subset.replay(&tiny, &sim),
            Err(SubsetError::SubsetMismatch { .. }) | Err(SubsetError::Simulation(_))
        ));
    }

    #[test]
    fn typical_frames_prefer_majority_composition() {
        // Frames 0..3 share one composition; frame 3 is an outlier with a
        // very different draw count — selection must prefer the majority.
        let w = GameProfile::shooter("t")
            .frames(20)
            .draws_per_frame(80)
            .build(31)
            .generate();
        let all: Vec<usize> = (0..w.frames().len()).collect();
        let chosen = select_typical_frames(&w, &all, 2);
        assert_eq!(chosen.len(), 2);
        assert!(chosen.iter().all(|&f| f < w.frames().len()));
        // Deterministic and sorted.
        assert_eq!(chosen, {
            let mut c = select_typical_frames(&w, &all, 2);
            c.sort_unstable();
            c
        });
    }

    #[test]
    fn typical_frames_handles_edge_cases() {
        let w = GameProfile::shooter("t")
            .frames(5)
            .draws_per_frame(20)
            .build(32)
            .generate();
        assert!(select_typical_frames(&w, &[], 3).is_empty());
        let single = select_typical_frames(&w, &[2], 3);
        assert_eq!(single, vec![2]);
        // Requesting more frames than exist returns what exists.
        let all: Vec<usize> = (0..5).collect();
        assert_eq!(select_typical_frames(&w, &all, 99).len(), 5);
    }
}
