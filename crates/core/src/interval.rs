//! Frame intervals: the granularity of phase detection.

use crate::shader_vector::ShaderVector;
use serde::{Deserialize, Serialize};
use subset3d_trace::Workload;

/// A contiguous range of frames within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameInterval {
    /// Index of the first frame.
    pub start: usize,
    /// Number of frames (the trailing interval may be shorter than the
    /// configured length).
    pub len: usize,
}

impl FrameInterval {
    /// The frame indices covered by the interval.
    pub fn frames(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }

    /// Index of the middle frame of the interval.
    pub fn middle(&self) -> usize {
        self.start + self.len / 2
    }
}

/// Partitions a workload into intervals of `interval_len` frames and
/// computes each interval's [`ShaderVector`].
///
/// The trailing interval keeps whatever frames remain (it may be shorter).
/// Returns an empty vector for an empty workload.
///
/// # Panics
///
/// Panics if `interval_len` is zero.
///
/// # Examples
///
/// ```
/// use subset3d_core::interval_signatures;
/// use subset3d_trace::gen::GameProfile;
///
/// let w = GameProfile::shooter("g").frames(25).draws_per_frame(20).build(1).generate();
/// let sigs = interval_signatures(&w, 10);
/// assert_eq!(sigs.len(), 3);
/// assert_eq!(sigs[2].0.len, 5);
/// ```
pub fn interval_signatures(
    workload: &Workload,
    interval_len: usize,
) -> Vec<(FrameInterval, ShaderVector)> {
    assert!(interval_len > 0, "interval length must be positive");
    let frames = workload.frames();
    let mut out = Vec::with_capacity(frames.len().div_ceil(interval_len));
    let mut start = 0;
    while start < frames.len() {
        let len = interval_len.min(frames.len() - start);
        let interval = FrameInterval { start, len };
        let signature = ShaderVector::of_frames(&frames[interval.frames()]);
        out.push((interval, signature));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use subset3d_trace::gen::GameProfile;

    fn workload(frames: usize) -> Workload {
        GameProfile::shooter("t")
            .frames(frames)
            .draws_per_frame(20)
            .build(3)
            .generate()
    }

    #[test]
    fn intervals_tile_the_trace() {
        let w = workload(23);
        let sigs = interval_signatures(&w, 5);
        assert_eq!(sigs.len(), 5);
        let mut next = 0;
        for (iv, _) in &sigs {
            assert_eq!(iv.start, next);
            next += iv.len;
        }
        assert_eq!(next, 23);
        assert_eq!(sigs.last().unwrap().0.len, 3);
    }

    #[test]
    fn middle_frame_within_interval() {
        let iv = FrameInterval { start: 10, len: 5 };
        assert_eq!(iv.middle(), 12);
        assert!(iv.frames().contains(&iv.middle()));
        let single = FrameInterval { start: 3, len: 1 };
        assert_eq!(single.middle(), 3);
    }

    #[test]
    fn signatures_are_nonempty_for_real_frames() {
        let w = workload(12);
        for (_, sig) in interval_signatures(&w, 4) {
            assert!(!sig.is_empty());
        }
    }

    #[test]
    fn empty_workload_no_intervals() {
        let w = Workload::new(
            "empty",
            Vec::new(),
            Default::default(),
            Default::default(),
            Default::default(),
        );
        assert!(interval_signatures(&w, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        interval_signatures(&workload(5), 0);
    }
}
