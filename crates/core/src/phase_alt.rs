//! Alternative phase detectors, for the phase-signature ablation (E15).
//!
//! SimPoint-style CPU subsetting detects phases from basic-block vectors;
//! the paper's contribution is that for 3D workloads, *shader vectors* are
//! the right signature. This module implements the naive alternative — a
//! load signature built from draw counts — so the two can be compared on
//! subset quality.

use crate::error::SubsetError;
use crate::interval::FrameInterval;
use crate::phase::{Phase, PhaseAnalysis};
use crate::shader_vector::ShaderVector;
use subset3d_trace::Workload;

/// Detects phases from interval *load signatures*: two intervals share a
/// phase when their mean draws-per-frame differ by at most `tolerance`
/// (relative). This is the draw-count analogue of SimPoint's BBV matching
/// and deliberately ignores what is being drawn.
///
/// Matching is against the founding interval of each phase (like
/// [`crate::PhaseDetector`]), and the output reuses [`PhaseAnalysis`] so
/// the whole downstream pipeline runs unchanged. Phase signatures are the
/// founding interval's shader vector (recorded for reporting only — it
/// plays no role in matching).
///
/// # Errors
///
/// Returns [`SubsetError::EmptyWorkload`] for empty traces.
///
/// # Panics
///
/// Panics if `interval_len` is zero or `tolerance` is negative.
///
/// # Examples
///
/// ```
/// use subset3d_core::detect_phases_by_load;
/// use subset3d_trace::gen::GameProfile;
///
/// let w = GameProfile::shooter("g").frames(40).draws_per_frame(50).build(3).generate();
/// let analysis = detect_phases_by_load(&w, 5, 0.15)?;
/// assert!(analysis.phase_count() >= 1);
/// # Ok::<(), subset3d_core::SubsetError>(())
/// ```
pub fn detect_phases_by_load(
    workload: &Workload,
    interval_len: usize,
    tolerance: f64,
) -> Result<PhaseAnalysis, SubsetError> {
    assert!(interval_len > 0, "interval length must be positive");
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let frames = workload.frames();
    if frames.is_empty() {
        return Err(SubsetError::EmptyWorkload);
    }

    let mut intervals = Vec::new();
    let mut loads = Vec::new();
    let mut start = 0;
    while start < frames.len() {
        let len = interval_len.min(frames.len() - start);
        let interval = FrameInterval { start, len };
        let draws: usize = frames[interval.frames()]
            .iter()
            .map(|f| f.draw_count())
            .sum();
        intervals.push(interval);
        loads.push(draws as f64 / len as f64);
        start += len;
    }

    let mut phases: Vec<Phase> = Vec::new();
    let mut phase_loads: Vec<f64> = Vec::new();
    let mut interval_phase = Vec::with_capacity(intervals.len());
    for (idx, &load) in loads.iter().enumerate() {
        let matched = phase_loads.iter().position(|&founder| {
            let denom = founder.max(1.0);
            (load - founder).abs() / denom <= tolerance
        });
        let phase_id = match matched {
            Some(id) => id,
            None => {
                let id = phases.len();
                phases.push(Phase {
                    id,
                    signature: ShaderVector::of_frames(&frames[intervals[idx].frames()]),
                    intervals: Vec::new(),
                    representative: idx,
                });
                phase_loads.push(load);
                id
            }
        };
        phases[phase_id].intervals.push(idx);
        interval_phase.push(phase_id);
    }

    // Same representative policy as the shader-vector detector: median by
    // total draws.
    for phase in &mut phases {
        let mut members = phase.intervals.clone();
        members.sort_by_key(|&i| {
            frames[intervals[i].frames()]
                .iter()
                .map(|f| f.draw_count())
                .sum::<usize>()
        });
        phase.representative = members[members.len() / 2];
    }

    Ok(PhaseAnalysis {
        intervals,
        interval_phase,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use subset3d_trace::gen::GameProfile;

    fn workload() -> Workload {
        GameProfile::shooter("t")
            .frames(60)
            .draws_per_frame(100)
            .build(61)
            .generate()
    }

    #[test]
    fn partitions_all_intervals() {
        let w = workload();
        let a = detect_phases_by_load(&w, 5, 0.15).unwrap();
        assert_eq!(a.interval_phase.len(), a.intervals.len());
        let covered: usize = a.phases.iter().map(|p| p.intervals.len()).sum();
        assert_eq!(covered, a.intervals.len());
        for p in &a.phases {
            assert!(p.intervals.contains(&p.representative));
        }
    }

    #[test]
    fn zero_tolerance_rarely_groups() {
        let w = workload();
        let strict = detect_phases_by_load(&w, 5, 0.0).unwrap();
        let loose = detect_phases_by_load(&w, 5, 0.5).unwrap();
        assert!(strict.phase_count() >= loose.phase_count());
    }

    #[test]
    fn load_detection_confuses_distinct_areas() {
        // The designed blind spot: two different areas with similar load
        // merge under load signatures but not under shader vectors.
        let (w, truth) = GameProfile::shooter("t")
            .frames(120)
            .draws_per_frame(150)
            .build(62)
            .generate_with_truth();
        let by_load = detect_phases_by_load(&w, 5, 0.2).unwrap();
        // Find pure Explore(0) and Explore(1) intervals.
        let pure = |area: u8| {
            by_load.intervals.iter().enumerate().find_map(|(i, iv)| {
                let kinds: std::collections::BTreeSet<_> =
                    iv.frames().map(|f| truth.per_frame[f]).collect();
                (kinds.len() == 1 && kinds.contains(&subset3d_trace::gen::PhaseKind::Explore(area)))
                    .then_some(i)
            })
        };
        if let (Some(a), Some(b)) = (pure(0), pure(1)) {
            // Same load multiplier → likely merged by load detection. This
            // is not guaranteed for every seed, so only assert the
            // structural possibility: both intervals exist and the detector
            // assigned them *some* phase.
            assert!(by_load.interval_phase[a] < by_load.phase_count());
            assert!(by_load.interval_phase[b] < by_load.phase_count());
        }
    }

    #[test]
    fn empty_workload_rejected() {
        let w = Workload::new(
            "empty",
            Vec::new(),
            Default::default(),
            Default::default(),
            Default::default(),
        );
        assert_eq!(
            detect_phases_by_load(&w, 5, 0.1),
            Err(SubsetError::EmptyWorkload)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = detect_phases_by_load(&workload(), 0, 0.1);
    }
}
