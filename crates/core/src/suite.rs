//! Suite-level subsetting: the paper's actual setting.
//!
//! Pathfinding evaluates a *suite* of games (the paper's corpus spans 717
//! frames across several titles). This module orchestrates the pipeline
//! over a suite and aggregates the corpus-level metrics the paper reports
//! as averages.

use crate::config::SubsetConfig;
use crate::error::SubsetError;
use crate::pipeline::{Subsetter, SubsettingOutcome};
use subset3d_gpusim::{ArchConfig, FrequencySweep, Simulator};
use subset3d_stats::{mean, pearson};
use subset3d_trace::Workload;

/// The pipeline outcome for every game of a suite, plus aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteOutcome {
    /// `(game name, outcome)` per suite member, in input order.
    pub games: Vec<(String, SubsettingOutcome)>,
}

impl SuiteOutcome {
    /// Corpus-average per-frame prediction error (paper: 1.0 %).
    pub fn mean_prediction_error(&self) -> f64 {
        mean(
            &self
                .games
                .iter()
                .map(|(_, o)| o.evaluation.mean_prediction_error())
                .collect::<Vec<_>>(),
        )
    }

    /// Corpus-average clustering efficiency (paper: 65.8 %).
    pub fn mean_efficiency(&self) -> f64 {
        mean(
            &self
                .games
                .iter()
                .map(|(_, o)| o.evaluation.mean_efficiency())
                .collect::<Vec<_>>(),
        )
    }

    /// Corpus-average outlier fraction (paper: 3.0 %).
    pub fn mean_outlier_fraction(&self) -> f64 {
        mean(
            &self
                .games
                .iter()
                .map(|(_, o)| o.evaluation.outlier_fraction())
                .collect::<Vec<_>>(),
        )
    }

    /// Suite-wide subset size: kept draws over parent draws across all
    /// games.
    pub fn suite_draw_fraction(&self, workloads: &[Workload]) -> f64 {
        let kept: usize = self
            .games
            .iter()
            .map(|(_, o)| o.subset.selected_draw_count())
            .sum();
        let parent: usize = workloads.iter().map(Workload::total_draws).sum();
        if parent == 0 {
            0.0
        } else {
            kept as f64 / parent as f64
        }
    }

    /// Number of games in the suite.
    pub fn len(&self) -> usize {
        self.games.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.games.is_empty()
    }
}

/// Runs the subsetting pipeline over every game of a suite.
///
/// # Errors
///
/// Fails on the first game whose pipeline fails (suite evaluation is
/// all-or-nothing: a partially subset suite cannot back pathfinding
/// decisions).
///
/// # Examples
///
/// ```
/// use subset3d_core::{subset_suite, SubsetConfig};
/// use subset3d_gpusim::{ArchConfig, Simulator};
/// use subset3d_trace::gen::GameProfile;
///
/// let suite = vec![
///     GameProfile::shooter("a").frames(10).draws_per_frame(40).build(1).generate(),
///     GameProfile::rts("b").frames(10).draws_per_frame(40).build(2).generate(),
/// ];
/// let sim = Simulator::new(ArchConfig::baseline());
/// let outcome = subset_suite(&suite, &SubsetConfig::default(), &sim)?;
/// assert_eq!(outcome.len(), 2);
/// # Ok::<(), subset3d_core::SubsetError>(())
/// ```
pub fn subset_suite(
    workloads: &[Workload],
    config: &SubsetConfig,
    sim: &Simulator,
) -> Result<SuiteOutcome, SubsetError> {
    let subsetter = Subsetter::new(config.clone());
    let mut games = Vec::with_capacity(workloads.len());
    for w in workloads {
        games.push((w.name.clone(), subsetter.run(w, sim)?));
    }
    Ok(SuiteOutcome { games })
}

/// Validates the whole suite under frequency scaling: the *suite-total*
/// parent time vs the suite-total subset estimate, as a pathfinder would
/// aggregate it. Returns `(parent improvements, subset improvements,
/// Pearson r)`.
///
/// # Errors
///
/// Propagates simulator/subset errors; fails when the sweep has fewer than
/// two points.
pub fn validate_suite_scaling(
    workloads: &[Workload],
    outcome: &SuiteOutcome,
    base: &ArchConfig,
    sweep: &FrequencySweep,
) -> Result<(Vec<f64>, Vec<f64>, f64), SubsetError> {
    let mut parent_times = Vec::with_capacity(sweep.len());
    let mut subset_times = Vec::with_capacity(sweep.len());
    for config in sweep.configs(base) {
        let sim = Simulator::new(config);
        let mut parent = 0.0;
        let mut subset = 0.0;
        for (w, (_, o)) in workloads.iter().zip(&outcome.games) {
            parent += sim.simulate_workload(w)?.total_ns;
            subset += o.subset.replay(w, &sim)?;
        }
        parent_times.push(parent);
        subset_times.push(subset);
    }
    let parent_improvement = FrequencySweep::improvement_series(&parent_times);
    let subset_improvement = FrequencySweep::improvement_series(&subset_times);
    let r = pearson(&parent_improvement, &subset_improvement).map_err(|e| {
        SubsetError::InvalidConfig {
            reason: format!("suite correlation undefined: {e}"),
        }
    })?;
    Ok((parent_improvement, subset_improvement, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use subset3d_trace::gen::GameProfile;

    fn suite() -> Vec<Workload> {
        vec![
            GameProfile::shooter("a")
                .frames(12)
                .draws_per_frame(60)
                .build(51)
                .generate(),
            GameProfile::racing("b")
                .frames(12)
                .draws_per_frame(60)
                .build(52)
                .generate(),
        ]
    }

    #[test]
    fn suite_outcome_aggregates() {
        let workloads = suite();
        let sim = Simulator::new(ArchConfig::baseline());
        let outcome = subset_suite(&workloads, &SubsetConfig::default(), &sim).unwrap();
        assert_eq!(outcome.len(), 2);
        assert!(!outcome.is_empty());
        assert!(outcome.mean_efficiency() > 0.0);
        assert!(outcome.mean_prediction_error() < 0.1);
        assert!(outcome.mean_outlier_fraction() < 0.2);
        let fraction = outcome.suite_draw_fraction(&workloads);
        assert!(fraction > 0.0 && fraction < 1.0);
    }

    #[test]
    fn suite_scaling_correlates() {
        let workloads = suite();
        let sim = Simulator::new(ArchConfig::baseline());
        let outcome = subset_suite(&workloads, &SubsetConfig::default(), &sim).unwrap();
        let sweep = FrequencySweep::new(vec![500.0, 900.0, 1300.0]);
        let (parent, subset, r) =
            validate_suite_scaling(&workloads, &outcome, &ArchConfig::baseline(), &sweep).unwrap();
        assert_eq!(parent.len(), 3);
        assert_eq!(subset.len(), 3);
        assert!(r > 0.99, "r = {r}");
    }

    #[test]
    fn empty_suite_is_empty_outcome() {
        let sim = Simulator::new(ArchConfig::baseline());
        let outcome = subset_suite(&[], &SubsetConfig::default(), &sim).unwrap();
        assert!(outcome.is_empty());
        assert_eq!(outcome.suite_draw_fraction(&[]), 0.0);
    }

    #[test]
    fn suite_fails_fast_on_bad_config() {
        let workloads = suite();
        let sim = Simulator::new(ArchConfig::baseline());
        let bad = SubsetConfig::default().with_interval_len(0);
        assert!(subset_suite(&workloads, &bad, &sim).is_err());
    }
}
