//! Phase detection via shader-vector equality.

use crate::error::SubsetError;
use crate::interval::{interval_signatures, FrameInterval};
use crate::shader_vector::ShaderVector;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use subset3d_trace::Workload;

/// One detected phase: a set of intervals sharing a shader vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase id (discovery order).
    pub id: usize,
    /// The shared shader vector.
    pub signature: ShaderVector,
    /// Indices (into the interval list) of the member intervals.
    pub intervals: Vec<usize>,
    /// Index of the representative interval (the member whose frame count
    /// is the phase median by total draws).
    pub representative: usize,
}

impl Phase {
    /// Number of occurrences of the phase in the trace.
    pub fn occurrences(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the phase repeats (occurs more than once).
    pub fn repeats(&self) -> bool {
        self.intervals.len() > 1
    }
}

/// Result of phase detection on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseAnalysis {
    /// The intervals, in trace order.
    pub intervals: Vec<FrameInterval>,
    /// Phase id of every interval.
    pub interval_phase: Vec<usize>,
    /// The detected phases, in discovery order.
    pub phases: Vec<Phase>,
}

impl PhaseAnalysis {
    /// Number of detected phases.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Fraction of intervals covered by repeating phases — the paper's
    /// evidence that "phases exist in each game".
    pub fn repeat_coverage(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        let repeated: usize = self
            .phases
            .iter()
            .filter(|p| p.repeats())
            .map(Phase::occurrences)
            .sum();
        repeated as f64 / self.intervals.len() as f64
    }

    /// Compression: unique phases over total intervals (lower = more
    /// redundancy to exploit).
    pub fn compression(&self) -> f64 {
        if self.intervals.is_empty() {
            return 1.0;
        }
        self.phases.len() as f64 / self.intervals.len() as f64
    }

    /// The phase-id sequence over the trace (one entry per interval).
    pub fn sequence(&self) -> &[usize] {
        &self.interval_phase
    }
}

/// Detects phases by grouping intervals with matching shader vectors.
///
/// # Examples
///
/// ```
/// use subset3d_core::PhaseDetector;
/// use subset3d_trace::gen::GameProfile;
///
/// let w = GameProfile::shooter("g").frames(60).draws_per_frame(40).build(5).generate();
/// let analysis = PhaseDetector::new(5).detect(&w)?;
/// assert!(analysis.phase_count() >= 2);
/// assert!(analysis.phase_count() <= analysis.intervals.len());
/// # Ok::<(), subset3d_core::SubsetError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseDetector {
    interval_len: usize,
    similarity: f64,
}

impl PhaseDetector {
    /// Creates a detector with exact shader-vector equality (the paper's
    /// criterion).
    ///
    /// # Panics
    ///
    /// Panics if `interval_len` is zero.
    pub fn new(interval_len: usize) -> Self {
        assert!(interval_len > 0, "interval length must be positive");
        PhaseDetector {
            interval_len,
            similarity: 1.0,
        }
    }

    /// Relaxes matching to Jaccard similarity ≥ `threshold` against the
    /// phase's accumulated signature (useful when stochastic effects —
    /// e.g. a rare particle shader — perturb otherwise-identical
    /// intervals).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1]`.
    pub fn with_similarity(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "similarity threshold must be in (0, 1]"
        );
        self.similarity = threshold;
        self
    }

    /// Runs detection on a workload.
    ///
    /// # Errors
    ///
    /// Returns [`SubsetError::EmptyWorkload`] when the workload has no
    /// frames.
    pub fn detect(&self, workload: &Workload) -> Result<PhaseAnalysis, SubsetError> {
        let signatures = interval_signatures(workload, self.interval_len);
        if signatures.is_empty() {
            return Err(SubsetError::EmptyWorkload);
        }
        let exact = self.similarity >= 1.0;
        let mut phases: Vec<Phase> = Vec::new();
        let mut by_signature: HashMap<ShaderVector, usize> = HashMap::new();
        let mut interval_phase = Vec::with_capacity(signatures.len());
        let mut intervals = Vec::with_capacity(signatures.len());

        for (idx, (interval, signature)) in signatures.into_iter().enumerate() {
            intervals.push(interval);
            let phase_id = if exact {
                match by_signature.get(&signature) {
                    Some(&id) => id,
                    None => {
                        let id = phases.len();
                        by_signature.insert(signature.clone(), id);
                        phases.push(Phase {
                            id,
                            signature,
                            intervals: Vec::new(),
                            representative: idx,
                        });
                        id
                    }
                }
            } else {
                // First phase whose *founding* signature is similar enough.
                // Matching against the founder (not an accumulated union)
                // keeps membership stable: a phase's vocabulary does not
                // drift as members join.
                match phases
                    .iter()
                    .position(|p| p.signature.jaccard(&signature) >= self.similarity)
                {
                    Some(id) => id,
                    None => {
                        let id = phases.len();
                        phases.push(Phase {
                            id,
                            signature,
                            intervals: Vec::new(),
                            representative: idx,
                        });
                        id
                    }
                }
            };
            phases[phase_id].intervals.push(idx);
            interval_phase.push(phase_id);
        }

        // Representative: the member interval with the median frame span
        // (typical occurrence of the phase, chosen µarch-independently).
        for phase in &mut phases {
            let mut members = phase.intervals.clone();
            members.sort_by_key(|&i| {
                let iv = intervals[i];
                workload.frames()[iv.frames()]
                    .iter()
                    .map(subset3d_trace::Frame::draw_count)
                    .sum::<usize>()
            });
            phase.representative = members[members.len() / 2];
        }

        Ok(PhaseAnalysis {
            intervals,
            interval_phase,
            phases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subset3d_trace::gen::{GameProfile, PhaseKind};

    #[test]
    fn detects_ground_truth_repeats() {
        // The shooter script revisits Explore(0); detection must group the
        // revisit with the first visit.
        let (w, truth) = GameProfile::shooter("t")
            .frames(120)
            .draws_per_frame(120)
            .build(21)
            .generate_with_truth();
        let analysis = PhaseDetector::new(5)
            .with_similarity(0.85)
            .detect(&w)
            .unwrap();

        // Map each interval to its dominant ground-truth kind.
        let dominant_kind = |iv: &FrameInterval| {
            let mut counts: std::collections::BTreeMap<PhaseKind, usize> = Default::default();
            for f in iv.frames() {
                *counts.entry(truth.per_frame[f]).or_default() += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        // Intervals fully inside the same ground-truth kind must share a
        // detected phase when their kinds match.
        let mut by_kind: std::collections::BTreeMap<PhaseKind, Vec<usize>> = Default::default();
        for (i, iv) in analysis.intervals.iter().enumerate() {
            let kinds: std::collections::BTreeSet<PhaseKind> =
                iv.frames().map(|f| truth.per_frame[f]).collect();
            if kinds.len() == 1 {
                by_kind.entry(dominant_kind(iv)).or_default().push(i);
            }
        }
        let explore0 = &by_kind[&PhaseKind::Explore(0)];
        assert!(
            explore0.len() >= 2,
            "need at least two pure Explore(0) intervals"
        );
        let ids: std::collections::BTreeSet<usize> = explore0
            .iter()
            .map(|&i| analysis.interval_phase[i])
            .collect();
        assert_eq!(
            ids.len(),
            1,
            "Explore(0) intervals split across phases {ids:?}"
        );
    }

    #[test]
    fn distinct_areas_get_distinct_phases() {
        let (w, truth) = GameProfile::shooter("t")
            .frames(120)
            .draws_per_frame(120)
            .build(22)
            .generate_with_truth();
        let analysis = PhaseDetector::new(5)
            .with_similarity(0.85)
            .detect(&w)
            .unwrap();
        let mut phase_of_kind: std::collections::BTreeMap<PhaseKind, usize> = Default::default();
        for (i, iv) in analysis.intervals.iter().enumerate() {
            let kinds: std::collections::BTreeSet<PhaseKind> =
                iv.frames().map(|f| truth.per_frame[f]).collect();
            if kinds.len() == 1 {
                phase_of_kind.insert(*kinds.iter().next().unwrap(), analysis.interval_phase[i]);
            }
        }
        let (Some(&a), Some(&b)) = (
            phase_of_kind.get(&PhaseKind::Explore(0)),
            phase_of_kind.get(&PhaseKind::Explore(1)),
        ) else {
            panic!("script must produce pure intervals for both areas");
        };
        assert_ne!(a, b, "different areas must not share a phase");
    }

    #[test]
    fn exact_equality_groups_identical_vectors() {
        let w = GameProfile::racing("t")
            .frames(80)
            .draws_per_frame(60)
            .build(9)
            .generate();
        let analysis = PhaseDetector::new(4).detect(&w).unwrap();
        // Sanity: interval/phase bookkeeping is consistent.
        assert_eq!(analysis.interval_phase.len(), analysis.intervals.len());
        for phase in &analysis.phases {
            assert!(phase.intervals.contains(&phase.representative));
            for &i in &phase.intervals {
                assert_eq!(analysis.interval_phase[i], phase.id);
            }
        }
    }

    #[test]
    fn racing_script_has_high_repeat_coverage() {
        // Laps: the racing script repeats the same areas many times.
        let w = GameProfile::racing("t")
            .frames(100)
            .draws_per_frame(80)
            .build(10)
            .generate();
        let analysis = PhaseDetector::new(5)
            .with_similarity(0.85)
            .detect(&w)
            .unwrap();
        assert!(
            analysis.repeat_coverage() > 0.5,
            "coverage {}",
            analysis.repeat_coverage()
        );
        assert!(
            analysis.compression() < 0.6,
            "compression {}",
            analysis.compression()
        );
    }

    #[test]
    fn empty_workload_is_error() {
        let w = Workload::new(
            "empty",
            Vec::new(),
            Default::default(),
            Default::default(),
            Default::default(),
        );
        assert_eq!(
            PhaseDetector::new(5).detect(&w),
            Err(SubsetError::EmptyWorkload)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        PhaseDetector::new(0);
    }

    #[test]
    #[should_panic(expected = "similarity threshold")]
    fn bad_similarity_rejected() {
        PhaseDetector::new(5).with_similarity(0.0);
    }
}
