//! Property tests on the methodology layer: prediction identities, subset
//! weight accounting and phase bookkeeping on arbitrary profiles.

use proptest::prelude::*;
use subset3d_core::{
    cluster_frame, predict_frame, ClusterMethod, PhaseDetector, SubsetConfig, Subsetter,
};
use subset3d_gpusim::{ArchConfig, Simulator};
use subset3d_trace::gen::GameProfile;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Zero-threshold clustering groups only feature-identical draws, whose
    /// simulated costs differ only through cache context — so the frame
    /// error stays tiny on every profile.
    #[test]
    fn zero_threshold_error_is_contextual_only(seed in 0u64..500) {
        let w = GameProfile::shooter("prop").frames(3).draws_per_frame(80).build(seed).generate();
        let sim = Simulator::new(ArchConfig::baseline());
        let config = SubsetConfig::default()
            .with_cluster_method(ClusterMethod::Threshold { distance: 0.0 });
        for frame in w.frames() {
            let clustering = cluster_frame(frame, &w, &config);
            let cost = sim.simulate_frame(frame, &w).unwrap();
            let p = predict_frame(&clustering, &cost);
            prop_assert!(p.error() < 0.02, "seed {seed}: error {}", p.error());
        }
    }

    /// Phase bookkeeping is a partition of intervals for every profile and
    /// interval length.
    #[test]
    fn phase_analysis_is_always_a_partition(
        seed in 0u64..500,
        frames in 4usize..16,
        interval in 1usize..6,
    ) {
        let w = GameProfile::racing("prop").frames(frames).draws_per_frame(25).build(seed).generate();
        let analysis = PhaseDetector::new(interval).with_similarity(0.85).detect(&w).unwrap();
        prop_assert_eq!(analysis.interval_phase.len(), analysis.intervals.len());
        let covered: usize = analysis.phases.iter().map(|p| p.intervals.len()).sum();
        prop_assert_eq!(covered, analysis.intervals.len());
        let frame_total: usize = analysis.intervals.iter().map(|iv| iv.len).sum();
        prop_assert_eq!(frame_total, frames);
        prop_assert!((0.0..=1.0).contains(&analysis.repeat_coverage()));
        prop_assert!(analysis.compression() > 0.0 && analysis.compression() <= 1.0);
    }

    /// The end-to-end pipeline's subset always validates and its replay is
    /// positive and finite, for any small profile.
    #[test]
    fn pipeline_subset_always_replayable(
        seed in 0u64..500,
        frames in 4usize..12,
        interval in 2usize..5,
    ) {
        let w = GameProfile::rts("prop").frames(frames).draws_per_frame(40).build(seed).generate();
        let sim = Simulator::new(ArchConfig::baseline());
        let config = SubsetConfig::default().with_interval_len(interval);
        let outcome = Subsetter::new(config).run(&w, &sim).unwrap();
        outcome.subset.validate(&w).unwrap();
        let estimate = outcome.subset.replay(&w, &sim).unwrap();
        prop_assert!(estimate.is_finite() && estimate > 0.0);
        // The estimate is within a loose factor of truth even on tiny
        // stochastic workloads.
        let actual = sim.simulate_workload(&w).unwrap().total_ns;
        let ratio = estimate / actual;
        prop_assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
