//! End-to-end determinism across executor thread counts.
//!
//! Simulation, clustering, and sweeps all fan out over the shared
//! `subset3d-exec` pool; every result must be bit-identical whether the
//! pool runs one worker, two, or as many as the machine offers (the same
//! counts `SUBSET3D_THREADS` can pin). A single `#[test]` drives all
//! thread counts because the pool is process-global.

use subset3d_core::{SubsetConfig, Subsetter, SubsettingOutcome};
use subset3d_gpusim::{
    sweep_configs, sweep_frequencies, ArchConfig, ConfigPoint, FrequencySweep, Simulator,
    SweepPoint, SweepSession, WorkloadCost,
};
use subset3d_trace::gen::GameProfile;
use subset3d_trace::Workload;

struct Observed {
    cost: WorkloadCost,
    outcome: SubsettingOutcome,
    freq_points: Vec<SweepPoint>,
    config_points: Vec<ConfigPoint>,
    session_points: Vec<ConfigPoint>,
}

fn observe(workload: &Workload) -> Observed {
    let sim = Simulator::new(ArchConfig::baseline());
    let candidates = ArchConfig::pathfinding_candidates();
    let session = SweepSession::new(&candidates).unwrap();
    Observed {
        cost: sim.simulate_workload(workload).unwrap(),
        outcome: Subsetter::new(SubsetConfig::default()).run(workload, &sim).unwrap(),
        freq_points: sweep_frequencies(workload, &ArchConfig::baseline(), &FrequencySweep::standard())
            .unwrap(),
        config_points: sweep_configs(workload, &candidates).unwrap(),
        session_points: session.sweep(workload).unwrap(),
    }
}

#[test]
fn results_are_bit_identical_at_any_thread_count() {
    // Large enough that simulate_workload takes its parallel path.
    let workload = GameProfile::shooter("det").frames(6).draws_per_frame(250).build(9).generate();
    assert!(workload.total_draws() >= 1000);

    let max = subset3d_exec::default_threads().max(4);
    subset3d_exec::set_thread_count(1);
    let reference = observe(&workload);

    for threads in [2, max] {
        subset3d_exec::set_thread_count(threads);
        let observed = observe(&workload);
        assert_eq!(observed.cost, reference.cost, "WorkloadCost at {threads} threads");
        assert_eq!(observed.outcome, reference.outcome, "pipeline outcome at {threads} threads");
        assert_eq!(
            observed.freq_points, reference.freq_points,
            "frequency sweep at {threads} threads"
        );
        assert_eq!(
            observed.config_points, reference.config_points,
            "config sweep at {threads} threads"
        );
        assert_eq!(
            observed.session_points, reference.session_points,
            "sweep session at {threads} threads"
        );
    }
}
