//! End-to-end determinism across executor thread counts.
//!
//! Simulation, clustering, and sweeps all fan out over the shared
//! `subset3d-exec` pool; every result must be bit-identical whether the
//! pool runs one worker, two, or as many as the machine offers (the same
//! counts `SUBSET3D_THREADS` can pin). Metric recording must be equally
//! invisible: the same runs repeat with `subset3d_obs` enabled and are
//! held to the same reference. A single `#[test]` drives all thread
//! counts because the pool (and the metrics registry) is process-global.

use subset3d_core::{SubsetConfig, Subsetter, SubsettingOutcome};
use subset3d_gpusim::{
    sweep_configs, sweep_frequencies, ArchConfig, ConfigPoint, FrequencySweep, Simulator,
    SweepPoint, SweepSession, WorkloadCost,
};
use subset3d_trace::gen::GameProfile;
use subset3d_trace::Workload;

struct Observed {
    cost: WorkloadCost,
    outcome: SubsettingOutcome,
    freq_points: Vec<SweepPoint>,
    config_points: Vec<ConfigPoint>,
    session_points: Vec<ConfigPoint>,
}

fn observe(workload: &Workload) -> Observed {
    let sim = Simulator::new(ArchConfig::baseline());
    let candidates = ArchConfig::pathfinding_candidates();
    let session = SweepSession::new(&candidates).unwrap();
    Observed {
        cost: sim.simulate_workload(workload).unwrap(),
        outcome: Subsetter::new(SubsetConfig::default())
            .run(workload, &sim)
            .unwrap(),
        freq_points: sweep_frequencies(
            workload,
            &ArchConfig::baseline(),
            &FrequencySweep::standard(),
        )
        .unwrap(),
        config_points: sweep_configs(workload, &candidates).unwrap(),
        session_points: session.sweep(workload).unwrap(),
    }
}

#[test]
fn results_are_bit_identical_at_any_thread_count() {
    // Large enough that simulate_workload takes its parallel path.
    let workload = GameProfile::shooter("det")
        .frames(6)
        .draws_per_frame(250)
        .build(9)
        .generate();
    assert!(workload.total_draws() >= 1000);

    let max = subset3d_exec::default_threads().max(4);
    subset3d_exec::set_thread_count(1);
    let reference = observe(&workload);

    for threads in [2, max] {
        subset3d_exec::set_thread_count(threads);
        let observed = observe(&workload);
        compare(&observed, &reference, threads);
    }

    // Metrics observe, they never steer: with recording enabled the
    // results must still match the metrics-off reference bit for bit,
    // at every thread count.
    for threads in [1, 2, 8] {
        subset3d_exec::set_thread_count(threads);
        subset3d_obs::reset();
        subset3d_obs::set_enabled(true);
        let observed = observe(&workload);
        let snapshot = subset3d_obs::snapshot();
        subset3d_obs::set_enabled(false);
        compare(&observed, &reference, threads);
        // Earlier (metrics-off) runs may have published an adaptation
        // hint for this stream, in which case later simulators start
        // bypassed instead of probing a window — either way the draw
        // cache saw every lookup, and the snapshot must show it.
        let draw_lookups = snapshot.counter("gpusim.draw_cache.misses").unwrap_or(0)
            + snapshot.counter("gpusim.draw_cache.hits").unwrap_or(0)
            + snapshot.counter("gpusim.draw_cache.bypassed").unwrap_or(0);
        assert!(
            draw_lookups > 0,
            "instrumented run recorded no cache traffic at {threads} threads: {snapshot:?}"
        );
    }

    // An iterated sweep session replays identical frames into warm
    // caches; the snapshot must show the hits. A small workload keeps
    // every simulator under the Auto adaptation window and below the
    // parallel-dispatch threshold, so its cross-frame draw repetition
    // yields the same hit counts at any thread count.
    subset3d_obs::reset();
    subset3d_obs::set_enabled(true);
    let small = GameProfile::shooter("warm")
        .frames(4)
        .draws_per_frame(50)
        .build(2)
        .generate();
    let session = SweepSession::new(&ArchConfig::pathfinding_candidates()).unwrap();
    let first = session.sweep(&small).unwrap();
    let second = session.sweep(&small).unwrap();
    let snapshot = subset3d_obs::snapshot();
    subset3d_obs::set_enabled(false);
    assert_eq!(first, second, "warm sweep must be bit-identical");
    assert!(
        snapshot.counter("gpusim.draw_cache.hits").unwrap_or(0) > 0,
        "iterated sweep must hit the draw cache: {snapshot:?}"
    );
    assert!(
        snapshot.counter("gpusim.batch_cache.hits").unwrap_or(0) > 0,
        "iterated sweep must hit the batch cache: {snapshot:?}"
    );
    assert_eq!(
        snapshot.counter("gpusim.draw_cache.bypassed"),
        Some(0),
        "sub-window stream must keep memoizing"
    );
}

fn compare(observed: &Observed, reference: &Observed, threads: usize) {
    {
        assert_eq!(
            observed.cost, reference.cost,
            "WorkloadCost at {threads} threads"
        );
        assert_eq!(
            observed.outcome, reference.outcome,
            "pipeline outcome at {threads} threads"
        );
        assert_eq!(
            observed.freq_points, reference.freq_points,
            "frequency sweep at {threads} threads"
        );
        assert_eq!(
            observed.config_points, reference.config_points,
            "config sweep at {threads} threads"
        );
        assert_eq!(
            observed.session_points, reference.session_points,
            "sweep session at {threads} threads"
        );
    }
}
