//! Shared parallel-execution layer for the subset3d workspace.
//!
//! One persistent pool of worker threads serves every parallel site in
//! the pipeline — per-draw simulation, per-frame clustering, per-config
//! sweeps, per-point experiment fan-out — replacing the hand-rolled
//! `std::thread::scope` / `crossbeam::scope` chunking each of those
//! sites used to carry.
//!
//! # Model
//!
//! Work arrives as a *batch*: a slice of items plus an indexed mapping
//! function. Items are claimed dynamically one at a time from a shared
//! counter (work-stealing in the "whoever is free takes the next item"
//! sense), so an expensive item never strands a fixed chunk behind it.
//! The caller participates in its own batch, which keeps
//! `SUBSET3D_THREADS=1` purely sequential (no workers are spawned) and
//! makes nested [`par_map_indexed`] calls deadlock-free: a caller always
//! makes progress on its own items even if every worker is busy.
//!
//! Results land at their item's index, so output order — and therefore
//! every fold over the output — is identical to the sequential path
//! regardless of thread count or scheduling.
//!
//! # Thread-count control
//!
//! The global pool sizes itself from the `SUBSET3D_THREADS` environment
//! variable (falling back to the machine's available parallelism) and
//! can be resized at runtime with [`set_thread_count`].
//!
//! # Small-workload serial fallback
//!
//! Announcing a batch to the workers costs a channel send and a wakeup
//! per worker — more than a tiny batch saves. Batches with fewer than
//! [`serial_threshold`] items (default [`DEFAULT_SERIAL_THRESHOLD`],
//! override with `SUBSET3D_SERIAL_THRESHOLD`) therefore run inline on
//! the caller. Because results always land at their item's index, the
//! fallback is invisible to callers: outputs are bit-identical either
//! way (covered by the determinism test).
//!
//! # Panics
//!
//! A panic inside the mapping function is captured on the worker,
//! remaining items are drained without running, and the first payload is
//! re-raised on the caller once the batch has fully settled — no result
//! is leaked and no worker is left holding borrowed data.

use std::any::Any;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use subset3d_obs::{LazyCounter, LazyHistogram};

/// Environment variable overriding the global pool's thread count.
pub const THREADS_ENV: &str = "SUBSET3D_THREADS";

/// Environment variable overriding the serial-fallback threshold.
pub const SERIAL_THRESHOLD_ENV: &str = "SUBSET3D_SERIAL_THRESHOLD";

/// Default batch size below which [`ThreadPool::par_map_indexed`] runs
/// inline on the caller instead of fanning out. Small enough that the
/// six-candidate pathfinding sweep (few items, each expensive) still
/// parallelises.
pub const DEFAULT_SERIAL_THRESHOLD: usize = 4;

/// Item count below which batches run inline: `SUBSET3D_SERIAL_THRESHOLD`
/// if set to an integer, otherwise [`DEFAULT_SERIAL_THRESHOLD`].
pub fn serial_threshold() -> usize {
    if let Ok(raw) = std::env::var(SERIAL_THRESHOLD_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n;
        }
    }
    DEFAULT_SERIAL_THRESHOLD
}

// Executor metrics (recorded only while `subset3d_obs` is enabled):
// batches dispatched, items executed on the caller vs. each worker,
// claim attempts that found the batch already drained, and how long a
// batch sat in the channel before the first worker picked it up.
static OBS_BATCHES: LazyCounter = LazyCounter::new("exec.batches");
static OBS_CALLER_TASKS: LazyCounter = LazyCounter::new("exec.caller.tasks");
static OBS_STEAL_EMPTY: LazyCounter = LazyCounter::new("exec.steal.empty");
static OBS_QUEUE_WAIT: LazyHistogram = LazyHistogram::new("exec.queue_wait_ns");

// ---- batch ------------------------------------------------------------

/// One parallel map over a slice, shared between the caller and every
/// worker that picks it up. The mapping closure's borrows are
/// lifetime-erased; soundness rests on the invariant that `run` is never
/// invoked after `completed == total`, and the caller blocks until then.
struct Batch {
    /// Next unclaimed item index.
    next: AtomicUsize,
    /// Consecutive items claimed per counter bump. 1 reproduces pure
    /// work-stealing; larger values amortise the shared-counter traffic
    /// over runs of cheap items (see [`ThreadPool::par_map_chunked`]).
    chunk: usize,
    /// Number of items settled (run to completion, panicked, or skipped).
    completed: AtomicUsize,
    total: usize,
    /// Set on first panic; later items are drained without running.
    poisoned: AtomicBool,
    /// First captured panic payload, re-raised by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    run: Box<dyn Fn(usize) + Send + Sync>,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// When the batch was announced to the workers. `Some` only while
    /// metrics are enabled, so the disabled path never samples a clock.
    enqueued: Option<Instant>,
    /// Set once the queue-wait sample has been recorded (first worker
    /// to dequeue the batch wins).
    wait_recorded: AtomicBool,
}

impl Batch {
    /// Records how long the batch waited in the channel; called by each
    /// worker on receipt, samples only the first arrival.
    fn note_dequeued(&self) {
        if let Some(enqueued) = self.enqueued {
            if !self.wait_recorded.swap(true, Ordering::Relaxed) {
                let ns = enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                OBS_QUEUE_WAIT.record(ns);
            }
        }
    }

    /// Claims and executes runs of `chunk` consecutive items until the
    /// batch is exhausted; returns how many items this thread executed.
    fn work(&self) -> usize {
        let mut executed = 0;
        loop {
            let base = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if base >= self.total {
                OBS_STEAL_EMPTY.incr();
                subset3d_obs::trace_instant("exec", "exec.steal.empty");
                break;
            }
            let end = (base + self.chunk).min(self.total);
            for i in base..end {
                executed += 1;
                if !self.poisoned.load(Ordering::Relaxed) {
                    let _task = subset3d_obs::trace_span_arg("exec", "exec.task", "item", i as u64);
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.run)(i))) {
                        self.poisoned.store(true, Ordering::Relaxed);
                        let mut slot = self.panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                }
            }
            if self.completed.fetch_add(end - base, Ordering::AcqRel) + (end - base) == self.total {
                *self.done.lock() = true;
                self.done_cv.notify_all();
            }
        }
        executed
    }

    /// Blocks until every item has settled.
    fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.done_cv.wait(&mut done);
        }
    }
}

// ---- pool -------------------------------------------------------------

/// A persistent pool of `threads - 1` workers; the caller of each batch
/// acts as the remaining thread.
pub struct ThreadPool {
    threads: usize,
    sender: Option<Sender<Arc<Batch>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with the given total parallelism (clamped to at
    /// least 1). `threads == 1` spawns no workers: every batch runs
    /// sequentially on the caller.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, workers) = if threads > 1 {
            let (tx, rx) = unbounded::<Arc<Batch>>();
            let handles = (0..threads - 1)
                .map(|i| {
                    let rx: Receiver<Arc<Batch>> = rx.clone();
                    // Resolved once per worker; every pool reuses the
                    // same per-slot names, so counts accumulate across
                    // pool resizes.
                    let tasks = subset3d_obs::counter(&format!("exec.worker.{i}.tasks"));
                    std::thread::Builder::new()
                        .name(format!("subset3d-exec-{i}"))
                        .spawn(move || {
                            // Claim this worker's metric shard slot up
                            // front so the one-time claim (a mutex) never
                            // lands inside a timed batch.
                            subset3d_obs::claim_thread_slot();
                            for batch in rx.iter() {
                                batch.note_dequeued();
                                tasks.add(batch.work() as u64);
                            }
                        })
                        .expect("spawn pool worker")
                })
                .collect();
            (Some(tx), handles)
        } else {
            (None, Vec::new())
        };
        Self {
            threads,
            sender,
            workers: Mutex::new(workers),
        }
    }

    /// Total parallelism of this pool, caller included.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel, preserving order. The output
    /// is element-for-element identical to
    /// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` —
    /// scheduling only changes which thread computes each element.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_chunked(items, 1, f)
    }

    /// [`ThreadPool::par_map_indexed`] with `chunk` consecutive items
    /// claimed per counter bump. With cheap uniform items (fixed-width
    /// simulation batches, say) `chunk > 1` amortises the shared-counter
    /// cache-line traffic over a run of items while keeping claiming
    /// dynamic; an expensive item still strands at most `chunk - 1`
    /// neighbours behind it. Output is identical to the sequential map
    /// for every `chunk`.
    pub fn par_map_chunked<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let n = items.len();
        if self.threads <= 1 || n <= 1 || n < serial_threshold() {
            let _span =
                subset3d_obs::trace_span_arg("exec", "exec.batch.serial", "items", n as u64);
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let _span = subset3d_obs::trace_span_arg("exec", "exec.batch", "items", n as u64);

        let mut storage: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit requires no initialization.
        unsafe { storage.set_len(n) };
        let written: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let slots = SendPtr(storage.as_mut_ptr());

        {
            let written = &written;
            let items_ref = items;
            let f_ref = &f;
            let run = move |i: usize| {
                let value = f_ref(i, &items_ref[i]);
                // SAFETY: each index is claimed exactly once, so no slot
                // is written twice and no two threads touch one slot.
                unsafe { slots.slot(i).write(MaybeUninit::new(value)) };
                written[i].store(true, Ordering::Release);
            };
            let run: Box<dyn Fn(usize) + Send + Sync + '_> = Box::new(run);
            // SAFETY: the closure borrows `items`, `f`, `written`, and
            // the result buffer, all of which outlive this scope because
            // `batch.wait()` below blocks until every invocation of the
            // closure has returned; afterwards no thread calls it again
            // (the claim counter is saturated), so the erased lifetime
            // is never dereferenced dangling. Late-arriving workers only
            // touch the batch's own atomics, which live in the Arc.
            let run: Box<dyn Fn(usize) + Send + Sync + 'static> =
                unsafe { std::mem::transmute(run) };

            let batch = Arc::new(Batch {
                next: AtomicUsize::new(0),
                chunk,
                completed: AtomicUsize::new(0),
                total: n,
                poisoned: AtomicBool::new(false),
                panic: Mutex::new(None),
                run,
                done: Mutex::new(false),
                done_cv: Condvar::new(),
                enqueued: subset3d_obs::enabled().then(Instant::now),
                wait_recorded: AtomicBool::new(false),
            });
            OBS_BATCHES.incr();
            if let Some(sender) = &self.sender {
                // Announce once per worker; a worker that arrives after
                // the batch drained exits its loop immediately.
                for _ in 0..self.threads - 1 {
                    let _ = sender.send(Arc::clone(&batch));
                }
            }
            OBS_CALLER_TASKS.add(batch.work() as u64);
            batch.wait();

            let panic_payload = batch.panic.lock().take();
            if let Some(payload) = panic_payload {
                for (i, flag) in written.iter().enumerate() {
                    if flag.load(Ordering::Acquire) {
                        // SAFETY: flagged slots hold initialized values.
                        unsafe { storage[i].assume_init_drop() };
                    }
                }
                resume_unwind(payload);
            }
        }

        storage
            .into_iter()
            .map(|slot| {
                // SAFETY: no panic occurred, so every item ran to
                // completion and wrote its slot.
                unsafe { slot.assume_init() }
            })
            .collect()
    }

    /// Runs `f` for every item in parallel; ordering of side effects is
    /// unspecified, completion of all items is guaranteed on return.
    pub fn par_for_each_indexed<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        self.par_map_indexed(items, |i, t| f(i, t));
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's receive loop.
        self.sender = None;
        for handle in self.workers.get_mut().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Raw result-buffer pointer, shareable across workers.
///
/// SAFETY: workers write disjoint slots (one per claimed index).
struct SendPtr<R>(*mut MaybeUninit<R>);

impl<R> SendPtr<R> {
    /// The `i`-th slot. Taking `self` (not the field) keeps closures
    /// capturing the whole Send+Sync wrapper under disjoint capture.
    fn slot(self, i: usize) -> *mut MaybeUninit<R> {
        // SAFETY: callers stay within the buffer's length.
        unsafe { self.0.add(i) }
    }
}

impl<R> Clone for SendPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SendPtr<R> {}
unsafe impl<R: Send> Send for SendPtr<R> {}
unsafe impl<R: Send> Sync for SendPtr<R> {}

// ---- global pool ------------------------------------------------------

static GLOBAL: RwLock<Option<Arc<ThreadPool>>> = RwLock::new(None);

/// Default parallelism: `SUBSET3D_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide shared pool, created on first use.
pub fn global() -> Arc<ThreadPool> {
    if let Some(pool) = GLOBAL.read().as_ref() {
        return Arc::clone(pool);
    }
    let mut slot = GLOBAL.write();
    if let Some(pool) = slot.as_ref() {
        return Arc::clone(pool);
    }
    let pool = Arc::new(ThreadPool::new(default_threads()));
    *slot = Some(Arc::clone(&pool));
    pool
}

/// Replaces the global pool with one of the given parallelism. Batches
/// already running on the old pool finish undisturbed; its workers wind
/// down once the last user drops their handle.
pub fn set_thread_count(threads: usize) {
    let pool = Arc::new(ThreadPool::new(threads.max(1)));
    *GLOBAL.write() = Some(pool);
}

/// Current parallelism of the global pool (creating it if needed).
pub fn thread_count() -> usize {
    global().threads()
}

/// Runs `f` with the global pool resized to `threads`, restoring the
/// previous parallelism afterwards (also on panic). The pool is process
/// global, so callers that depend on a specific thread count while other
/// threads submit work should serialise access themselves.
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_thread_count(self.0);
        }
    }
    let _restore = Restore(thread_count());
    set_thread_count(threads);
    f()
}

/// [`ThreadPool::par_map_indexed`] on the global pool.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    global().par_map_indexed(items, f)
}

/// [`ThreadPool::par_map_chunked`] on the global pool.
pub fn par_map_chunked<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    global().par_map_chunked(items, chunk, f)
}

/// [`ThreadPool::par_for_each_indexed`] on the global pool.
pub fn par_for_each_indexed<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    global().par_for_each_indexed(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_matches_sequential_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 16] {
            let pool = ThreadPool::new(threads);
            let got = pool.par_map_indexed(&items, |_, x| x * x + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunked_output_matches_sequential_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            // Chunk sizes around, dividing, and exceeding the item count;
            // 0 must clamp to 1.
            for chunk in [0, 1, 3, 64, 1000, 20_000] {
                let got = pool.par_map_chunked(&items, chunk, |_, x| x * 3 + 1);
                assert_eq!(got, expected, "threads = {threads}, chunk = {chunk}");
            }
        }
    }

    #[test]
    fn chunked_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_chunked(&items, 8, |_, &x| {
                if x == 777 {
                    panic!("chunk boom");
                }
                x
            })
        }));
        assert!(result.is_err());
        assert_eq!(
            pool.par_map_chunked(&[5u32, 6], 4, |_, x| x + 1),
            vec![6, 7]
        );
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a"; 257];
        let pool = ThreadPool::new(4);
        let got = pool.par_map_indexed(&items, |i, _| i);
        assert_eq!(got, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_batches() {
        let pool = ThreadPool::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map_indexed(&empty, |_, x| *x).is_empty());
        assert_eq!(pool.par_map_indexed(&[7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_indexed(&items, |_, &x| {
                if x == 500 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let text = payload.downcast_ref::<String>().expect("string payload");
        assert!(text.contains("boom at 500"), "payload: {text}");
        // The pool must survive a poisoned batch.
        assert_eq!(pool.par_map_indexed(&[1u32, 2], |_, x| x * 2), vec![2, 4]);
    }

    #[test]
    fn drops_partial_results_on_panic() {
        use std::sync::atomic::AtomicUsize;
        static LIVE: AtomicUsize = AtomicUsize::new(0);

        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }

        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..200).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_indexed(&items, |_, &x| {
                if x == 100 {
                    panic!("halt");
                }
                Counted::new()
            })
        }));
        assert!(result.is_err());
        assert_eq!(LIVE.load(Ordering::SeqCst), 0, "partial results leaked");
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(4));
        let outer: Vec<usize> = (0..8).collect();
        let inner_pool = Arc::clone(&pool);
        let got = pool.par_map_indexed(&outer, |_, &o| {
            let inner: Vec<usize> = (0..50).collect();
            inner_pool
                .par_map_indexed(&inner, |_, &i| o * 100 + i)
                .iter()
                .sum::<usize>()
        });
        let expected: Vec<usize> = (0..8).map(|o| (0..50).map(|i| o * 100 + i).sum()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn global_pool_resizes() {
        set_thread_count(2);
        assert_eq!(thread_count(), 2);
        let items: Vec<u32> = (0..100).collect();
        let a = par_map_indexed(&items, |i, x| u64::from(*x) + i as u64);
        set_thread_count(1);
        assert_eq!(thread_count(), 1);
        let b = par_map_indexed(&items, |i, x| u64::from(*x) + i as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_attribute_every_executed_task() {
        subset3d_obs::reset();
        subset3d_obs::set_enabled(true);
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..10_000).collect();
        let got = pool.par_map_indexed(&items, |_, x| x + 1);

        // A worker attributes its task count after its last claim, which
        // can land just after the caller unblocks — poll briefly.
        let attributed = |snap: &subset3d_obs::MetricsSnapshot| {
            let caller = snap.counter("exec.caller.tasks").unwrap_or(0);
            let workers: u64 = snap
                .counters
                .iter()
                .filter(|(name, _)| name.starts_with("exec.worker."))
                .map(|(_, n)| n)
                .sum();
            caller + workers
        };
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let mut snap = subset3d_obs::snapshot();
        while attributed(&snap) < items.len() as u64 && Instant::now() < deadline {
            std::thread::yield_now();
            snap = subset3d_obs::snapshot();
        }
        subset3d_obs::set_enabled(false);
        subset3d_obs::reset();

        assert_eq!(got, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        // Other tests may run batches concurrently, so lower bounds only.
        assert!(snap.counter("exec.batches").unwrap_or(0) >= 1);
        assert!(
            attributed(&snap) >= items.len() as u64,
            "tasks unaccounted for: {snap:?}"
        );
    }

    // Tests that mutate SUBSET3D_SERIAL_THRESHOLD serialize on one lock.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn serial_fallback_is_bit_identical() {
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Float math whose result would expose any reassociation or
        // reordering between the inline and fanned-out paths.
        let items: Vec<u64> = (0..100).collect();
        let pool = ThreadPool::new(8);
        let run = || {
            pool.par_map_indexed(&items, |i, &x| {
                (0..50).fold(x as f64 + i as f64, |acc, k| acc * 1.000_1 + k as f64)
            })
        };
        std::env::set_var(SERIAL_THRESHOLD_ENV, "1000"); // everything inline
        let serial = run();
        std::env::set_var(SERIAL_THRESHOLD_ENV, "0"); // everything fanned out
        let parallel = run();
        std::env::remove_var(SERIAL_THRESHOLD_ENV);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "item {i} diverged");
        }
    }

    #[test]
    fn serial_threshold_reads_environment() {
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var(SERIAL_THRESHOLD_ENV, "17");
        assert_eq!(serial_threshold(), 17);
        std::env::set_var(SERIAL_THRESHOLD_ENV, "not-a-number");
        assert_eq!(serial_threshold(), DEFAULT_SERIAL_THRESHOLD);
        std::env::remove_var(SERIAL_THRESHOLD_ENV);
        assert_eq!(serial_threshold(), DEFAULT_SERIAL_THRESHOLD);
    }

    #[test]
    fn borrowed_non_copy_inputs_and_outputs() {
        let items: Vec<String> = (0..500).map(|i| format!("item-{i}")).collect();
        let pool = ThreadPool::new(3);
        let got = pool.par_map_indexed(&items, |i, s| format!("{s}/{i}"));
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s, &format!("item-{i}/{i}"));
        }
    }
}
