//! The common clustering result type.

use serde::{Deserialize, Serialize};

/// Result of a clustering run: per-point assignments plus cluster centroids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    assignments: Vec<usize>,
    centroids: Vec<Vec<f64>>,
}

impl Clustering {
    /// Builds a clustering from assignments and centroids.
    ///
    /// # Panics
    ///
    /// Panics if an assignment indexes past the centroid list.
    pub fn new(assignments: Vec<usize>, centroids: Vec<Vec<f64>>) -> Self {
        assert!(
            assignments.iter().all(|&a| a < centroids.len()),
            "assignment out of centroid range"
        );
        Clustering {
            assignments,
            centroids,
        }
    }

    /// Cluster index of every point, in input order.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Cluster centroids (feature-space means or leaders).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Number of clustered points.
    pub fn point_count(&self) -> usize {
        self.assignments.len()
    }

    /// Member point indices of every cluster.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.centroids.len()];
        for (i, &a) in self.assignments.iter().enumerate() {
            out[a].push(i);
        }
        out
    }

    /// Sum of squared Euclidean distances of points to their centroids.
    pub fn inertia(&self, points: &[Vec<f64>]) -> f64 {
        self.assignments
            .iter()
            .zip(points)
            .map(|(&a, p)| {
                self.centroids[a]
                    .iter()
                    .zip(p)
                    .map(|(c, x)| (c - x) * (c - x))
                    .sum::<f64>()
            })
            .sum()
    }

    /// Checks the partition invariant every algorithm must uphold: each
    /// point is assigned to exactly one existing cluster and
    /// [`Clustering::members`] covers each point exactly once. Returns a
    /// description of the first violation, if any.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable reason when the invariant does
    /// not hold.
    pub fn check_partition(&self) -> Result<(), String> {
        for (i, &a) in self.assignments.iter().enumerate() {
            if a >= self.centroids.len() {
                return Err(format!(
                    "point {i} assigned to cluster {a} of {}",
                    self.centroids.len()
                ));
            }
        }
        let mut seen = vec![false; self.assignments.len()];
        for (cluster, members) in self.members().iter().enumerate() {
            for &m in members {
                if m >= seen.len() {
                    return Err(format!("cluster {cluster} lists unknown point {m}"));
                }
                if seen[m] {
                    return Err(format!("point {m} appears in two clusters"));
                }
                seen[m] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("point {missing} is in no cluster"));
        }
        Ok(())
    }

    /// Returns the clustering with cluster indices permuted by `perm`
    /// (cluster `i` becomes cluster `perm[i]`): the same partition under
    /// new labels. Metamorphic tests use this to assert label-invariance
    /// of downstream metrics.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..len()`.
    pub fn relabeled(&self, perm: &[usize]) -> Clustering {
        assert_eq!(perm.len(), self.centroids.len(), "permutation length");
        let mut inverse = vec![usize::MAX; perm.len()];
        for (from, &to) in perm.iter().enumerate() {
            assert!(
                to < perm.len() && inverse[to] == usize::MAX,
                "not a permutation"
            );
            inverse[to] = from;
        }
        Clustering {
            assignments: self.assignments.iter().map(|&a| perm[a]).collect(),
            centroids: inverse.iter().map(|&i| self.centroids[i].clone()).collect(),
        }
    }

    /// Removes clusters with no members, compacting indices; returns the
    /// number of clusters removed.
    pub fn drop_empty(&mut self) -> usize {
        let mut counts = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            counts[a] += 1;
        }
        let mut remap = vec![usize::MAX; self.centroids.len()];
        let mut kept = Vec::with_capacity(self.centroids.len());
        for (i, c) in self.centroids.drain(..).enumerate() {
            if counts[i] > 0 {
                remap[i] = kept.len();
                kept.push(c);
            }
        }
        let removed = remap.iter().filter(|&&r| r == usize::MAX).count();
        self.centroids = kept;
        for a in &mut self.assignments {
            *a = remap[*a];
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_partition_points() {
        let c = Clustering::new(vec![0, 1, 0, 1, 1], vec![vec![0.0], vec![1.0]]);
        let members = c.members();
        assert_eq!(members[0], vec![0, 2]);
        assert_eq!(members[1], vec![1, 3, 4]);
        assert_eq!(c.point_count(), 5);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of centroid range")]
    fn bad_assignment_rejected() {
        Clustering::new(vec![2], vec![vec![0.0]]);
    }

    #[test]
    fn inertia_zero_for_exact_points() {
        let points = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let c = Clustering::new(vec![0, 1], points.clone());
        assert_eq!(c.inertia(&points), 0.0);
    }

    #[test]
    fn inertia_accumulates_squares() {
        let points = vec![vec![0.0], vec![2.0]];
        let c = Clustering::new(vec![0, 0], vec![vec![1.0]]);
        assert_eq!(c.inertia(&points), 2.0);
    }

    #[test]
    fn drop_empty_compacts() {
        let mut c = Clustering::new(vec![0, 2, 2], vec![vec![0.0], vec![9.0], vec![2.0]]);
        let removed = c.drop_empty();
        assert_eq!(removed, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.assignments(), &[0, 1, 1]);
        assert_eq!(c.centroids()[1], vec![2.0]);
    }

    #[test]
    fn drop_empty_noop_when_full() {
        let mut c = Clustering::new(vec![0, 1], vec![vec![0.0], vec![1.0]]);
        assert_eq!(c.drop_empty(), 0);
        assert_eq!(c.len(), 2);
    }
}
