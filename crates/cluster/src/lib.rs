//! Clustering substrate for draw-call grouping.
//!
//! The paper groups draw-calls by performance similarity using clustering on
//! micro-architecture-independent features. This crate provides the three
//! algorithm families the methodology and its ablations use:
//!
//! * [`ThresholdClustering`] — single-pass leader clustering. The number of
//!   clusters *emerges* from a distance threshold, which matches how the
//!   paper reports clustering efficiency as a measured outcome. This is the
//!   production algorithm: O(n·k) per frame.
//! * [`KMeans`] — Lloyd iterations with k-means++ seeding, plus
//!   [`select_k_bic`] (x-means-style BIC model selection) for the
//!   k-selection ablation.
//! * [`Hierarchical`] — agglomerative clustering with selectable
//!   [`Linkage`], for the algorithm ablation on single frames.
//!
//! All algorithms are deterministic given their seed and produce a common
//! [`Clustering`] result.
//!
//! On top of the raw algorithms sits the [`Subsetter`] trait: a pluggable
//! backend contract (feature vectors in, partition + representatives out)
//! with implementations for the threshold path, k-means, two-phase
//! stratified sampling and PCA + agglomerative merging. Backends fit over
//! a canonical content ordering, so their output is invariant under input
//! permutation — see [`canonical_order`].
//!
//! For streaming consumers every backend can also produce an
//! [`IncrementalFit`] ([`Subsetter::incremental`]): points arrive in chunks
//! and the fit re-emits an up-to-date partition between chunks, bit-identical
//! to the batch fit while the stream still fits in the retention reservoir.
//!
//! # Examples
//!
//! ```
//! use subset3d_cluster::ThresholdClustering;
//!
//! let points = vec![
//!     vec![0.0, 0.0],
//!     vec![0.1, 0.0],
//!     vec![5.0, 5.0],
//! ];
//! let clustering = ThresholdClustering::new(1.0).fit(&points);
//! assert_eq!(clustering.len(), 2);
//! assert_eq!(clustering.assignments()[0], clustering.assignments()[1]);
//! ```

#![warn(missing_docs)]

mod bic;
mod clustering;
mod compare;
mod hierarchical;
mod incremental;
mod init;
mod kmeans;
mod medoid;
mod silhouette;
mod subsetter;
mod threshold;

pub use bic::{bic_score, select_k_bic};
pub use clustering::Clustering;
pub use compare::{adjusted_rand_index, rand_index};
pub use hierarchical::{Hierarchical, Linkage};
pub use incremental::{IncrementalFit, OnlineKMeans, ReservoirIncremental};
pub use init::kmeans_plus_plus;
pub use kmeans::KMeans;
pub use medoid::medoid_of;
pub use silhouette::silhouette_score;
pub use subsetter::{
    canonical_order, KMeansSubsetter, PcaAggloSubsetter, StratifiedSubsetter, Subsetter,
    SubsetterFit, ThresholdSubsetter,
};
pub use threshold::ThresholdClustering;
