//! k-means++ initialisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks `k` initial centroid indices with the k-means++ strategy: the
/// first uniformly, each subsequent one with probability proportional to
/// its squared distance from the nearest centroid chosen so far.
///
/// Deterministic for a given `seed`. Returns fewer than `k` indices only
/// when `points.len() < k`; `k = 0` or an empty dataset returns no indices.
pub fn kmeans_plus_plus(points: &[Vec<f64>], k: usize, seed: u64) -> Vec<usize> {
    if points.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(points.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = Vec::with_capacity(k);
    chosen.push(rng.gen_range(0..points.len()));
    let mut best_sq: Vec<f64> = points
        .iter()
        .map(|p| sq_dist(p, &points[chosen[0]]))
        .collect();
    while chosen.len() < k {
        let total: f64 = best_sq.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick any
            // unchosen index deterministically.
            match (0..points.len()).find(|i| !chosen.contains(i)) {
                Some(i) => i,
                None => break,
            }
        } else {
            let mut pick = rng.gen_range(0.0..total);
            let mut idx = points.len() - 1;
            for (i, &d) in best_sq.iter().enumerate() {
                if pick < d {
                    idx = i;
                    break;
                }
                pick -= d;
            }
            idx
        };
        chosen.push(next);
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, &points[next]);
            if d < best_sq[i] {
                best_sq[i] = d;
            }
        }
    }
    chosen
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Vec<f64>> {
        // Four tight blobs at the corners of a square.
        let mut pts = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)] {
            for i in 0..20 {
                pts.push(vec![cx + (i % 5) as f64 * 0.01, cy + (i / 5) as f64 * 0.01]);
            }
        }
        pts
    }

    #[test]
    fn deterministic_for_seed() {
        let pts = grid();
        assert_eq!(kmeans_plus_plus(&pts, 4, 7), kmeans_plus_plus(&pts, 4, 7));
    }

    #[test]
    fn spreads_across_blobs() {
        let pts = grid();
        let idx = kmeans_plus_plus(&pts, 4, 3);
        // Each chosen point should come from a distinct blob (blob = i/20).
        let blobs: std::collections::BTreeSet<usize> = idx.iter().map(|&i| i / 20).collect();
        assert_eq!(blobs.len(), 4, "chosen {idx:?}");
    }

    #[test]
    fn k_larger_than_points_truncates() {
        let pts = vec![vec![0.0], vec![1.0]];
        let idx = kmeans_plus_plus(&pts, 10, 1);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![vec![1.0]; 5];
        let idx = kmeans_plus_plus(&pts, 3, 1);
        assert_eq!(idx.len(), 3);
        let set: std::collections::BTreeSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 3, "indices must be distinct: {idx:?}");
    }

    #[test]
    fn empty_cases() {
        assert!(kmeans_plus_plus(&[], 3, 1).is_empty());
        assert!(kmeans_plus_plus(&[vec![1.0]], 0, 1).is_empty());
    }
}
