//! BIC-based cluster-count selection (x-means style).

use crate::clustering::Clustering;
use crate::kmeans::KMeans;

/// Bayesian information criterion of a k-means clustering under the
/// identical-spherical-Gaussian model of x-means (Pelleg & Moore, 2000).
/// Higher is better.
///
/// Returns `f64::NEG_INFINITY` for degenerate inputs (no points or no
/// clusters).
pub fn bic_score(points: &[Vec<f64>], clustering: &Clustering) -> f64 {
    let n = points.len();
    let k = clustering.len();
    if n == 0 || k == 0 {
        return f64::NEG_INFINITY;
    }
    let d = points[0].len() as f64;
    let n_f = n as f64;
    // Maximum-likelihood variance estimate, floored to keep perfect
    // clusterings (zero residual) finite.
    let denom = (n as isize - k as isize).max(1) as f64;
    let variance = (clustering.inertia(points) / denom).max(1e-12);

    let mut log_likelihood = 0.0;
    for members in clustering.members() {
        let n_c = members.len() as f64;
        if n_c == 0.0 {
            continue;
        }
        log_likelihood += n_c * n_c.ln()
            - n_c * n_f.ln()
            - n_c * d / 2.0 * (2.0 * std::f64::consts::PI * variance).ln()
            - (n_c - 1.0) * d / 2.0;
    }
    let free_params = k as f64 * (d + 1.0);
    log_likelihood - free_params / 2.0 * n_f.ln()
}

/// Selects the cluster count in `k_range` (inclusive) maximising
/// [`bic_score`], running one seeded k-means per candidate.
///
/// Returns the winning clustering. For an empty dataset returns an empty
/// clustering.
///
/// # Panics
///
/// Panics if the range is empty or starts at zero.
///
/// # Examples
///
/// ```
/// use subset3d_cluster::select_k_bic;
///
/// let mut points = Vec::new();
/// for &c in &[0.0, 10.0, 20.0] {
///     for i in 0..20 {
///         points.push(vec![c + (i as f64) * 0.01]);
///     }
/// }
/// let best = select_k_bic(&points, 1..=6, 42);
/// assert_eq!(best.len(), 3);
/// ```
pub fn select_k_bic(
    points: &[Vec<f64>],
    k_range: std::ops::RangeInclusive<usize>,
    seed: u64,
) -> Clustering {
    assert!(!k_range.is_empty(), "k range must be non-empty");
    assert!(*k_range.start() > 0, "k range must start at 1 or above");
    if points.is_empty() {
        return Clustering::new(Vec::new(), Vec::new());
    }
    const RESTARTS: u64 = 3;
    let mut best: Option<(f64, Clustering)> = None;
    for k in k_range {
        if k > points.len() {
            break;
        }
        // Lloyd's algorithm only finds a local optimum; take the best of a
        // few restarts so BIC compares each k at its true strength.
        let clustering = (0..RESTARTS)
            .map(|r| {
                KMeans::new(k)
                    .seed(
                        seed.wrapping_add(k as u64)
                            .wrapping_mul(RESTARTS)
                            .wrapping_add(r),
                    )
                    .fit(points)
            })
            .min_by(|a, b| {
                a.inertia(points)
                    .partial_cmp(&b.inertia(points))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one restart");
        let score = bic_score(points, &clustering);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, clustering));
        }
    }
    best.map(|(_, c)| c)
        .expect("at least one candidate k evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic approximately-Gaussian jitter in `[-1, 1]` (sum of
    /// three hashed uniforms), so blobs look like noise, not grids —
    /// grid-structured blobs genuinely reward further splitting under BIC.
    fn jitter(seed: u64) -> f64 {
        let u = |s: u64| {
            let mut x = s.wrapping_mul(0x9E3779B97F4A7C15);
            x ^= x >> 31;
            x = x.wrapping_mul(0xBF58476D1CE4E5B9);
            x ^= x >> 29;
            (x as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (u(seed) + u(seed.wrapping_add(1)) + u(seed.wrapping_add(2))) / 3.0
    }

    fn blobs(k: usize, per: usize, spacing: f64) -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for b in 0..k {
            for i in 0..per {
                let s = (b * per + i) as u64;
                pts.push(vec![b as f64 * spacing + jitter(s * 2), jitter(s * 2 + 1)]);
            }
        }
        pts
    }

    #[test]
    fn bic_prefers_true_k() {
        let pts = blobs(4, 40, 15.0);
        let scores: Vec<(usize, f64)> = (1..=8)
            .map(|k| {
                let c = KMeans::new(k).seed(3).fit(&pts);
                (k, bic_score(&pts, &c))
            })
            .collect();
        let best_k = scores
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best_k, 4, "scores: {scores:?}");
    }

    #[test]
    fn select_k_finds_true_count() {
        let pts = blobs(5, 40, 12.0);
        let c = select_k_bic(&pts, 1..=8, 11);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(
            bic_score(&[], &Clustering::new(Vec::new(), Vec::new())),
            f64::NEG_INFINITY
        );
        let c = select_k_bic(&[], 1..=3, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn perfect_clustering_score_is_finite() {
        let pts = vec![vec![0.0], vec![10.0]];
        let c = KMeans::new(2).fit(&pts);
        assert!(bic_score(&pts, &c).is_finite());
    }

    #[test]
    #[should_panic(expected = "start at 1")]
    fn zero_start_range_rejected() {
        select_k_bic(&[vec![1.0]], 0..=3, 0);
    }
}
