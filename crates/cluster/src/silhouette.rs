//! Silhouette score: cluster-quality validation.

use crate::clustering::Clustering;

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`; higher means
/// tighter, better-separated clusters.
///
/// Points in singleton clusters contribute silhouette `0`, following the
/// usual convention. Returns `None` when the clustering has fewer than two
/// clusters or no points (the score is undefined there).
///
/// O(n²); intended for validation on single frames, not corpus scale.
///
/// # Examples
///
/// ```
/// use subset3d_cluster::{silhouette_score, KMeans};
///
/// let points = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let c = KMeans::new(2).fit(&points);
/// let s = silhouette_score(&points, &c).unwrap();
/// assert!(s > 0.9);
/// ```
pub fn silhouette_score(points: &[Vec<f64>], clustering: &Clustering) -> Option<f64> {
    let n = points.len();
    if n == 0 || clustering.len() < 2 {
        return None;
    }
    let members = clustering.members();
    let assignments = clustering.assignments();
    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        let own_size = members[own].len();
        if own_size <= 1 {
            continue; // silhouette 0
        }
        let a: f64 = members[own]
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| dist(&points[i], &points[j]))
            .sum::<f64>()
            / (own_size - 1) as f64;
        let b = members
            .iter()
            .enumerate()
            .filter(|(c, m)| *c != own && !m.is_empty())
            .map(|(_, m)| {
                m.iter().map(|&j| dist(&points[i], &points[j])).sum::<f64>() / m.len() as f64
            })
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    Some(total / n as f64)
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeans;

    #[test]
    fn well_separated_blobs_score_high() {
        let mut pts = Vec::new();
        for &c in &[0.0, 50.0] {
            for i in 0..20 {
                pts.push(vec![c + i as f64 * 0.01]);
            }
        }
        let c = KMeans::new(2).seed(1).fit(&pts);
        assert!(silhouette_score(&pts, &c).unwrap() > 0.95);
    }

    #[test]
    fn random_split_scores_low() {
        // One uniform blob split in two arbitrary halves.
        let pts: Vec<Vec<f64>> = (0..40).map(|i| vec![(i as f64 * 0.77).sin()]).collect();
        let assignments: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let c = Clustering::new(assignments, vec![vec![0.0], vec![0.1]]);
        let s = silhouette_score(&pts, &c).unwrap();
        assert!(s < 0.3, "score {s}");
    }

    #[test]
    fn undefined_for_single_cluster() {
        let pts = vec![vec![0.0], vec![1.0]];
        let c = Clustering::new(vec![0, 0], vec![vec![0.5]]);
        assert_eq!(silhouette_score(&pts, &c), None);
    }

    #[test]
    fn undefined_for_empty() {
        let c = Clustering::new(Vec::new(), Vec::new());
        assert_eq!(silhouette_score(&[], &c), None);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i as f64).cos(), (i as f64).sin()])
            .collect();
        let c = KMeans::new(3).seed(2).fit(&pts);
        let s = silhouette_score(&pts, &c).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }
}
