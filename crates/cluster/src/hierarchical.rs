//! Agglomerative hierarchical clustering (Lance–Williams updates).

use crate::clustering::Clustering;

/// Inter-cluster distance definition for agglomerative merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Minimum pairwise distance (chains easily).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

impl Linkage {
    /// Lance–Williams update: distance from merged cluster `(a ∪ b)` to
    /// `c`, given the pre-merge distances and cluster sizes.
    fn update(self, d_ac: f64, d_bc: f64, size_a: usize, size_b: usize) -> f64 {
        match self {
            Linkage::Single => d_ac.min(d_bc),
            Linkage::Complete => d_ac.max(d_bc),
            Linkage::Average => {
                let (na, nb) = (size_a as f64, size_b as f64);
                (na * d_ac + nb * d_bc) / (na + nb)
            }
        }
    }
}

/// Agglomerative clustering that merges until a target cluster count or a
/// distance cut-off is reached.
///
/// O(n²) memory and O(n³) worst-case time — intended for single-frame
/// ablation studies, not corpus-scale runs (use
/// [`crate::ThresholdClustering`] there).
///
/// # Examples
///
/// ```
/// use subset3d_cluster::{Hierarchical, Linkage};
///
/// let points = vec![vec![0.0], vec![0.1], vec![5.0]];
/// let c = Hierarchical::with_cluster_count(Linkage::Average, 2).fit(&points);
/// assert_eq!(c.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hierarchical {
    linkage: Linkage,
    target_clusters: Option<usize>,
    distance_cutoff: Option<f64>,
}

impl Hierarchical {
    /// Merges until exactly `k` clusters remain (or fewer points exist).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn with_cluster_count(linkage: Linkage, k: usize) -> Self {
        assert!(k > 0, "cluster count must be positive");
        Hierarchical {
            linkage,
            target_clusters: Some(k),
            distance_cutoff: None,
        }
    }

    /// Merges while the closest pair is within `cutoff`.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is negative or NaN.
    pub fn with_distance_cutoff(linkage: Linkage, cutoff: f64) -> Self {
        assert!(cutoff >= 0.0, "cutoff must be non-negative");
        Hierarchical {
            linkage,
            target_clusters: None,
            distance_cutoff: Some(cutoff),
        }
    }

    /// Runs the agglomeration. Centroids of the result are cluster means.
    pub fn fit(&self, points: &[Vec<f64>]) -> Clustering {
        let n = points.len();
        if n == 0 {
            return Clustering::new(Vec::new(), Vec::new());
        }
        // active cluster state
        let mut alive: Vec<bool> = vec![true; n];
        let mut sizes: Vec<usize> = vec![1; n];
        let mut parent: Vec<usize> = (0..n).collect();
        // condensed distance matrix
        let mut dist = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d = euclid(&points[i], &points[j]);
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let mut clusters = n;
        let target = self.target_clusters.unwrap_or(1);
        loop {
            if clusters <= target.max(1) {
                break;
            }
            // Find the closest alive pair.
            let mut best = (usize::MAX, usize::MAX);
            let mut best_d = f64::INFINITY;
            for i in 0..n {
                if !alive[i] {
                    continue;
                }
                for j in i + 1..n {
                    if alive[j] && dist[i * n + j] < best_d {
                        best_d = dist[i * n + j];
                        best = (i, j);
                    }
                }
            }
            if best.0 == usize::MAX {
                break;
            }
            if let Some(cutoff) = self.distance_cutoff {
                if best_d > cutoff {
                    break;
                }
            }
            let (a, b) = best;
            // Merge b into a.
            for c in 0..n {
                if alive[c] && c != a && c != b {
                    let updated =
                        self.linkage
                            .update(dist[a * n + c], dist[b * n + c], sizes[a], sizes[b]);
                    dist[a * n + c] = updated;
                    dist[c * n + a] = updated;
                }
            }
            sizes[a] += sizes[b];
            alive[b] = false;
            parent[b] = a;
            clusters -= 1;
        }
        // Resolve final cluster roots and compact them.
        let root = |mut i: usize, parent: &[usize]| {
            while parent[i] != i {
                i = parent[i];
            }
            i
        };
        let mut remap = std::collections::BTreeMap::new();
        let mut assignments = Vec::with_capacity(n);
        for i in 0..n {
            let r = root(i, &parent);
            let next_id = remap.len();
            let id = *remap.entry(r).or_insert(next_id);
            assignments.push(id);
        }
        // Mean centroids.
        let dim = points[0].len();
        let k = remap.len();
        let mut centroids = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (&a, p) in assignments.iter().zip(points) {
            counts[a] += 1;
            for (c, &v) in centroids[a].iter_mut().zip(p) {
                *c += v;
            }
        }
        for (c, &count) in centroids.iter_mut().zip(&counts) {
            for v in c {
                *v /= count as f64;
            }
        }
        Clustering::new(assignments, centroids)
    }
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for &cx in &[0.0, 10.0] {
            for i in 0..10 {
                pts.push(vec![cx + i as f64 * 0.05]);
            }
        }
        pts
    }

    #[test]
    fn all_linkages_separate_blobs() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = Hierarchical::with_cluster_count(linkage, 2).fit(&blobs());
            assert_eq!(c.len(), 2, "{linkage:?}");
            let first = c.assignments()[0];
            assert!(c.assignments()[..10].iter().all(|&a| a == first));
            assert!(c.assignments()[10..].iter().all(|&a| a != first));
        }
    }

    #[test]
    fn distance_cutoff_stops_merging() {
        let c = Hierarchical::with_distance_cutoff(Linkage::Single, 0.06).fit(&blobs());
        // Within-blob gaps are 0.05, between-blob gap ≈ 9.55.
        assert_eq!(c.len(), 2);
        let tight = Hierarchical::with_distance_cutoff(Linkage::Single, 0.01).fit(&blobs());
        assert_eq!(tight.len(), 20);
    }

    #[test]
    fn k_one_merges_everything() {
        let c = Hierarchical::with_cluster_count(Linkage::Complete, 1).fit(&blobs());
        assert_eq!(c.len(), 1);
        assert_eq!(c.point_count(), 20);
    }

    #[test]
    fn centroids_are_cluster_means() {
        let pts = vec![vec![0.0], vec![2.0], vec![10.0]];
        let c = Hierarchical::with_cluster_count(Linkage::Average, 2).fit(&pts);
        let members = c.members();
        for (ci, m) in members.iter().enumerate() {
            let mean: f64 = m.iter().map(|&i| pts[i][0]).sum::<f64>() / m.len() as f64;
            assert!((c.centroids()[ci][0] - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_single_point() {
        assert!(Hierarchical::with_cluster_count(Linkage::Single, 2)
            .fit(&[])
            .is_empty());
        let c = Hierarchical::with_cluster_count(Linkage::Single, 2).fit(&[vec![1.0]]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn single_vs_complete_differ_on_chains() {
        // A chain of points 1 apart: single linkage glues the whole chain
        // under cutoff 1.5; complete linkage cannot.
        let chain: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let single = Hierarchical::with_distance_cutoff(Linkage::Single, 1.5).fit(&chain);
        let complete = Hierarchical::with_distance_cutoff(Linkage::Complete, 1.5).fit(&chain);
        assert_eq!(single.len(), 1);
        assert!(complete.len() > 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rejected() {
        Hierarchical::with_cluster_count(Linkage::Single, 0);
    }
}
