//! Medoid extraction: the representative draw of a cluster.

/// Returns the index (into `members`) of the cluster medoid: the member
/// minimising total squared distance to the other members. For large
/// clusters (> 64 members) the member nearest the centroid is returned
/// instead, which is O(n) and near-identical in practice.
///
/// Returns `None` for an empty member list.
///
/// # Examples
///
/// ```
/// use subset3d_cluster::medoid_of;
///
/// let points = vec![vec![0.0], vec![1.0], vec![2.0], vec![100.0]];
/// let m = medoid_of(&points, &[0, 1, 2]).unwrap();
/// assert_eq!(m, 1); // the middle point
/// ```
pub fn medoid_of(points: &[Vec<f64>], members: &[usize]) -> Option<usize> {
    if members.is_empty() {
        return None;
    }
    if members.len() == 1 {
        return Some(members[0]);
    }
    if members.len() <= 64 {
        // Exact medoid.
        let mut best = members[0];
        let mut best_total = f64::INFINITY;
        for &i in members {
            let total: f64 = members
                .iter()
                .map(|&j| sq_dist(&points[i], &points[j]))
                .sum();
            if total < best_total {
                best_total = total;
                best = i;
            }
        }
        Some(best)
    } else {
        // Centroid-nearest approximation.
        let dim = points[members[0]].len();
        let mut centroid = vec![0.0; dim];
        for &i in members {
            for (c, &v) in centroid.iter_mut().zip(&points[i]) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= members.len() as f64;
        }
        members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                sq_dist(&points[a], &centroid)
                    .partial_cmp(&sq_dist(&points[b], &centroid))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .or(Some(members[0]))
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_members_none() {
        assert_eq!(medoid_of(&[vec![1.0]], &[]), None);
    }

    #[test]
    fn singleton_is_its_own_medoid() {
        assert_eq!(medoid_of(&[vec![1.0], vec![2.0]], &[1]), Some(1));
    }

    #[test]
    fn exact_medoid_small_cluster() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![5.0, 5.0],
        ];
        // Members 0..3 (excluding the far point 3): medoid should be one of
        // the two nearby points, not the origin outlier.
        let m = medoid_of(&pts, &[0, 1, 2]).unwrap();
        assert!(m == 1 || m == 2);
    }

    #[test]
    fn large_cluster_uses_centroid_heuristic() {
        // 100 points on a line; medoid ≈ middle.
        let pts: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let members: Vec<usize> = (0..100).collect();
        let m = medoid_of(&pts, &members).unwrap();
        assert!((45..=54).contains(&m), "medoid {m}");
    }

    #[test]
    fn medoid_is_always_a_member() {
        let pts: Vec<Vec<f64>> = (0..80).map(|i| vec![(i as f64 * 1.7).sin()]).collect();
        let members: Vec<usize> = (10..50).collect();
        let m = medoid_of(&pts, &members).unwrap();
        assert!(members.contains(&m));
    }
}
