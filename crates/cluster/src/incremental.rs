//! Incremental (streaming) subsetter fits.
//!
//! The batch [`Subsetter`] trait fits a complete point set in one call. The
//! streaming service mode instead feeds points as they arrive and asks for
//! an up-to-date [`SubsetterFit`] after every chunk. This module provides
//! that contract as [`IncrementalFit`] plus two implementations:
//!
//! * [`ReservoirIncremental`] — wraps any batch backend behind a
//!   deterministic Algorithm-R reservoir (after *CPU Simulation Using
//!   Two-Phase Stratified Sampling*'s stratum maintenance for unknown
//!   stream lengths). While the stream fits in the reservoir the fit is
//!   **bit-identical** to the batch fit over the same points; past capacity
//!   the backend fits the retained sample.
//! * [`OnlineKMeans`] — MacQueen-style per-point centroid updates over the
//!   *whole* stream combined with a reservoir for partition/medoid
//!   election, so the centroids keep learning even after the reservoir
//!   stops growing.
//!
//! # Chunk-boundary invariance
//!
//! Every implementation must make its state a pure function of the point
//! *sequence*: ingesting `[a, b, c, d]` in one chunk or as `[a] + [b, c, d]`
//! must produce bit-identical state. The reservoir achieves this by keying
//! each keep/evict decision on the point's global stream index (a splitmix64
//! hash of `(seed, index)`), never on chunk shape; MacQueen updates are
//! per-point by construction. The serve-layer proptests enforce this for
//! arbitrary chunkings.

use crate::clustering::Clustering;
use crate::medoid::medoid_of;
use crate::subsetter::{Subsetter, SubsetterFit};

/// A subsetter fit that absorbs points one chunk at a time.
///
/// Implementations are deterministic functions of the ingested point
/// sequence — chunk boundaries must not influence any retained state — and
/// [`IncrementalFit::fit`] may be called at any time between chunks.
pub trait IncrementalFit: Send {
    /// Absorbs a chunk of points, in stream order.
    fn ingest(&mut self, points: &[Vec<f64>]);

    /// Fits the current state into a partition + representatives over the
    /// *retained* points (see [`IncrementalFit::retained`]). Point indices
    /// in the returned fit index into the retained slice.
    fn fit(&self) -> SubsetterFit;

    /// Total points ingested over the stream's lifetime.
    fn points_seen(&self) -> usize;

    /// The retained sample the fit partitions, in slot order.
    fn retained(&self) -> &[Vec<f64>];

    /// Global stream index of each retained point, parallel to
    /// [`IncrementalFit::retained`].
    fn retained_stream_indices(&self) -> &[usize];

    /// Maximum number of points the implementation retains.
    fn capacity(&self) -> usize;
}

/// SplitMix64: the reservoir's stateless per-index hash. Deterministic,
/// well-mixed, and dependency-free.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic Algorithm-R decision for stream index `index` (0-based)
/// into a reservoir of `capacity` slots: `None` keeps the reservoir as is,
/// `Some(slot)` replaces that slot. Indices below `capacity` always fill
/// their own slot.
fn reservoir_slot(seed: u64, index: usize, capacity: usize) -> Option<usize> {
    if index < capacity {
        return Some(index);
    }
    // Uniform draw from 0..=index via the per-index hash; keep with
    // probability capacity/(index+1), exactly Algorithm R.
    let draw =
        splitmix64(seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % (index as u64 + 1);
    if (draw as usize) < capacity {
        Some(draw as usize)
    } else {
        None
    }
}

/// Wraps a batch [`Subsetter`] behind a deterministic reservoir sample.
///
/// While `points_seen ≤ capacity` the retained sample *is* the stream, so
/// [`IncrementalFit::fit`] is bit-identical to `backend.fit(all points)`
/// (the batch fit canonicalises order, so slot order is irrelevant). Past
/// capacity the backend fits a uniform sample of the stream.
#[derive(Debug, Clone)]
pub struct ReservoirIncremental<S: Subsetter> {
    backend: S,
    seed: u64,
    capacity: usize,
    points: Vec<Vec<f64>>,
    stream_indices: Vec<usize>,
    seen: usize,
}

impl<S: Subsetter> ReservoirIncremental<S> {
    /// Creates a reservoir-backed incremental fit. `capacity` is clamped to
    /// at least one slot.
    pub fn new(backend: S, capacity: usize, seed: u64) -> Self {
        let capacity = capacity.max(1);
        ReservoirIncremental {
            backend,
            seed,
            capacity,
            points: Vec::new(),
            stream_indices: Vec::new(),
            seen: 0,
        }
    }
}

impl<S: Subsetter + Send> IncrementalFit for ReservoirIncremental<S> {
    fn ingest(&mut self, points: &[Vec<f64>]) {
        for point in points {
            let index = self.seen;
            self.seen += 1;
            match reservoir_slot(self.seed, index, self.capacity) {
                Some(slot) if slot == self.points.len() => {
                    self.points.push(point.clone());
                    self.stream_indices.push(index);
                }
                Some(slot) => {
                    self.points[slot] = point.clone();
                    self.stream_indices[slot] = index;
                }
                None => {}
            }
        }
    }

    fn fit(&self) -> SubsetterFit {
        self.backend.fit(&self.points)
    }

    fn points_seen(&self) -> usize {
        self.seen
    }

    fn retained(&self) -> &[Vec<f64>] {
        &self.points
    }

    fn retained_stream_indices(&self) -> &[usize] {
        &self.stream_indices
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Online k-means: MacQueen per-point centroid updates over the whole
/// stream, plus a reservoir for electing concrete representatives.
///
/// Centroids spawn (up to `k`) on the first `k` distinct points, then each
/// arrival moves its nearest centroid by `(x − c)/n`. Unlike the pure
/// reservoir wrapper, the centroids summarise *every* point — evicted ones
/// included — so the partition keeps tracking the stream after the
/// reservoir saturates. While `points_seen ≤ capacity` the fit delegates to
/// the exact batch backend for bit-identical convergence.
#[derive(Debug, Clone)]
pub struct OnlineKMeans<S: Subsetter> {
    /// Batch backend used verbatim while the stream still fits in the
    /// reservoir.
    exact: S,
    /// Maximum number of online centroids.
    k: usize,
    reservoir: ReservoirIncremental<S>,
    centroids: Vec<Vec<f64>>,
    counts: Vec<u64>,
}

impl<S: Subsetter + Clone> OnlineKMeans<S> {
    /// Creates an online k-means fit with at most `k` centroids (clamped to
    /// at least one) backed by the given exact batch backend.
    pub fn new(exact: S, k: usize, capacity: usize, seed: u64) -> Self {
        OnlineKMeans {
            exact: exact.clone(),
            k: k.max(1),
            reservoir: ReservoirIncremental::new(exact, capacity, seed),
            centroids: Vec::new(),
            counts: Vec::new(),
        }
    }

    fn nearest_centroid(&self, point: &[f64]) -> Option<(usize, f64)> {
        let mut best = None;
        for (i, c) in self.centroids.iter().enumerate() {
            let d: f64 = c.iter().zip(point).map(|(a, b)| (a - b) * (a - b)).sum();
            match best {
                Some((_, bd)) if d >= bd => {}
                _ => best = Some((i, d)),
            }
        }
        best
    }
}

impl<S: Subsetter + Clone + Send> IncrementalFit for OnlineKMeans<S> {
    fn ingest(&mut self, points: &[Vec<f64>]) {
        for point in points {
            self.reservoir.ingest(std::slice::from_ref(point));
            match self.nearest_centroid(point) {
                // Spawn until k centroids exist; re-seeing an exact centroid
                // value updates it instead (keeps duplicates from eating k).
                Some((_, d)) if d > 0.0 && self.centroids.len() < self.k => {
                    self.centroids.push(point.clone());
                    self.counts.push(1);
                }
                Some((j, _)) => {
                    self.counts[j] += 1;
                    let n = self.counts[j] as f64;
                    for (c, x) in self.centroids[j].iter_mut().zip(point) {
                        *c += (x - *c) / n;
                    }
                }
                None => {
                    self.centroids.push(point.clone());
                    self.counts.push(1);
                }
            }
        }
    }

    fn fit(&self) -> SubsetterFit {
        let retained = self.reservoir.retained();
        if retained.is_empty() {
            return SubsetterFit::empty();
        }
        // Exact regime: the reservoir still holds the whole stream.
        if self.reservoir.points_seen() <= self.reservoir.capacity() {
            return self.exact.fit(retained);
        }
        // Streaming regime: assign each retained point to its nearest
        // online centroid, drop empty clusters, elect medoids.
        let assignments: Vec<usize> = retained
            .iter()
            .map(|p| {
                self.centroids
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let da: f64 = a.iter().zip(p).map(|(x, y)| (x - y) * (x - y)).sum();
                        let db: f64 = b.iter().zip(p).map(|(x, y)| (x - y) * (x - y)).sum();
                        da.total_cmp(&db)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        let mut clustering = Clustering::new(assignments, self.centroids.clone());
        clustering.drop_empty();
        let representatives = clustering
            .members()
            .iter()
            .map(|members| medoid_of(retained, members).expect("non-empty cluster has a medoid"))
            .collect();
        SubsetterFit {
            clustering,
            representatives,
        }
    }

    fn points_seen(&self) -> usize {
        self.reservoir.points_seen()
    }

    fn retained(&self) -> &[Vec<f64>] {
        self.reservoir.retained()
    }

    fn retained_stream_indices(&self) -> &[usize] {
        self.reservoir.retained_stream_indices()
    }

    fn capacity(&self) -> usize {
        self.reservoir.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsetter::{KMeansSubsetter, ThresholdSubsetter};

    fn stream(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                vec![(t * 0.61).sin() * 4.0, (t * 1.7).cos() * 3.0]
            })
            .collect()
    }

    #[test]
    fn reservoir_matches_batch_within_capacity() {
        let points = stream(24);
        let backend = ThresholdSubsetter::new(1.0);
        let mut inc = ReservoirIncremental::new(backend, 64, 9);
        inc.ingest(&points);
        assert_eq!(inc.fit(), backend.fit(&points));
        assert_eq!(inc.retained(), &points[..]);
        assert_eq!(
            inc.retained_stream_indices(),
            (0..24).collect::<Vec<_>>().as_slice()
        );
    }

    #[test]
    fn reservoir_occupancy_is_bounded() {
        let points = stream(500);
        let mut inc = ReservoirIncremental::new(ThresholdSubsetter::new(1.0), 16, 3);
        inc.ingest(&points);
        assert_eq!(inc.retained().len(), 16);
        assert_eq!(inc.points_seen(), 500);
        // Retained indices are valid stream positions, each slot distinct.
        let mut seen = std::collections::BTreeSet::new();
        for &i in inc.retained_stream_indices() {
            assert!(i < 500);
            assert!(seen.insert(i));
        }
    }

    #[test]
    fn reservoir_is_chunk_invariant() {
        let points = stream(200);
        let mut whole = ReservoirIncremental::new(ThresholdSubsetter::new(1.0), 32, 5);
        whole.ingest(&points);
        let mut chunked = ReservoirIncremental::new(ThresholdSubsetter::new(1.0), 32, 5);
        for chunk in points.chunks(7) {
            chunked.ingest(chunk);
        }
        assert_eq!(whole.retained(), chunked.retained());
        assert_eq!(
            whole.retained_stream_indices(),
            chunked.retained_stream_indices()
        );
        assert_eq!(whole.fit(), chunked.fit());
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        // Feed 0..n and check the retained stream indices are spread over
        // the whole stream, not clustered at either end.
        let n = 2000;
        let points: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let mut inc = ReservoirIncremental::new(ThresholdSubsetter::new(0.5), 100, 11);
        inc.ingest(&points);
        let mean_index: f64 = inc
            .retained_stream_indices()
            .iter()
            .map(|&i| i as f64)
            .sum::<f64>()
            / 100.0;
        assert!(
            (mean_index - n as f64 / 2.0).abs() < n as f64 / 5.0,
            "mean retained index {mean_index} far from uniform"
        );
    }

    #[test]
    fn online_kmeans_exact_within_capacity() {
        let points = stream(30);
        let backend = KMeansSubsetter::fixed(4, 7);
        let mut inc = OnlineKMeans::new(backend, 4, 64, 7);
        inc.ingest(&points);
        assert_eq!(inc.fit(), backend.fit(&points));
    }

    #[test]
    fn online_kmeans_streams_past_capacity() {
        let points = stream(300);
        let mut inc = OnlineKMeans::new(KMeansSubsetter::fixed(4, 7), 4, 32, 7);
        for chunk in points.chunks(13) {
            inc.ingest(chunk);
        }
        let fit = inc.fit();
        fit.check(32).expect("streaming fit upholds the contract");
        assert!(fit.clustering.len() <= 4);
        assert_eq!(inc.points_seen(), 300);
    }

    #[test]
    fn online_kmeans_is_chunk_invariant() {
        let points = stream(150);
        let mut a = OnlineKMeans::new(KMeansSubsetter::fixed(3, 1), 3, 16, 1);
        a.ingest(&points);
        let mut b = OnlineKMeans::new(KMeansSubsetter::fixed(3, 1), 3, 16, 1);
        for chunk in points.chunks(4) {
            b.ingest(chunk);
        }
        assert_eq!(a.fit(), b.fit());
    }

    #[test]
    fn incremental_factory_covers_every_backend() {
        let points = stream(40);
        let backends: Vec<Box<dyn Subsetter + Send>> = vec![
            Box::new(ThresholdSubsetter::new(0.8)),
            Box::new(KMeansSubsetter::bic(6, 42)),
            Box::new(KMeansSubsetter::fixed(4, 42)),
            Box::new(crate::subsetter::StratifiedSubsetter::new(4, 0.25, 7)),
            Box::new(crate::subsetter::PcaAggloSubsetter::new(2, 5)),
        ];
        for backend in &backends {
            let mut inc = backend.incremental(64, 3);
            inc.ingest(&points);
            let fit = inc.fit();
            fit.check(points.len()).expect("contract");
            assert_eq!(fit, backend.fit(&points), "{}", backend.name());
        }
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut inc = ReservoirIncremental::new(ThresholdSubsetter::new(1.0), 0, 0);
        inc.ingest(&stream(5));
        assert_eq!(inc.capacity(), 1);
        assert_eq!(inc.retained().len(), 1);
    }
}
