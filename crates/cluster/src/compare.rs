//! Comparing clusterings: Rand index and adjusted Rand index.
//!
//! Used to quantify how much two clustering methods (e.g. threshold vs
//! k-means at matched efficiency) actually agree on which draws belong
//! together, beyond comparing their downstream error metrics.

use crate::clustering::Clustering;

/// Rand index between two clusterings of the same points: the fraction of
/// point pairs on which the clusterings agree (same-cluster in both, or
/// split in both). `1.0` = identical partitions.
///
/// # Panics
///
/// Panics if the clusterings cover different point counts.
///
/// # Examples
///
/// ```
/// use subset3d_cluster::{rand_index, Clustering};
///
/// let a = Clustering::new(vec![0, 0, 1, 1], vec![vec![0.0], vec![1.0]]);
/// let b = Clustering::new(vec![1, 1, 0, 0], vec![vec![1.0], vec![0.0]]);
/// assert_eq!(rand_index(&a, &b), 1.0); // label permutation is irrelevant
/// ```
pub fn rand_index(a: &Clustering, b: &Clustering) -> f64 {
    let (n, agreements) = pair_agreements(a, b);
    if n < 2 {
        return 1.0;
    }
    let pairs = n * (n - 1) / 2;
    agreements as f64 / pairs as f64
}

/// Adjusted Rand index (Hubert & Arabie): the Rand index corrected for
/// chance agreement. `1.0` = identical partitions; `≈ 0` = no better than
/// random; can be negative for adversarial disagreement.
///
/// # Panics
///
/// Panics if the clusterings cover different point counts.
///
/// # Examples
///
/// ```
/// use subset3d_cluster::{adjusted_rand_index, Clustering};
///
/// let a = Clustering::new(vec![0, 0, 1, 1, 2, 2], vec![vec![0.0]; 3]);
/// assert_eq!(adjusted_rand_index(&a, &a), 1.0);
/// ```
pub fn adjusted_rand_index(a: &Clustering, b: &Clustering) -> f64 {
    assert_eq!(
        a.point_count(),
        b.point_count(),
        "clusterings must cover the same points"
    );
    let n = a.point_count();
    if n < 2 {
        return 1.0;
    }
    // Contingency table.
    let ka = a.len();
    let kb = b.len();
    let mut table = vec![vec![0u64; kb]; ka];
    for (&ca, &cb) in a.assignments().iter().zip(b.assignments()) {
        table[ca][cb] += 1;
    }
    let choose2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = table.iter().flatten().map(|&x| choose2(x)).sum();
    let sum_a: f64 = (0..ka).map(|i| choose2(table[i].iter().sum::<u64>())).sum();
    let sum_b: f64 = (0..kb)
        .map(|j| choose2(table.iter().map(|row| row[j]).sum::<u64>()))
        .sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate (e.g. both single-cluster): identical by convention.
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

/// `(n, number of agreeing pairs)` between two clusterings.
fn pair_agreements(a: &Clustering, b: &Clustering) -> (usize, u64) {
    assert_eq!(
        a.point_count(),
        b.point_count(),
        "clusterings must cover the same points"
    );
    let n = a.point_count();
    let aa = a.assignments();
    let bb = b.assignments();
    let mut agreements = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            let same_a = aa[i] == aa[j];
            let same_b = bb[i] == bb[j];
            if same_a == same_b {
                agreements += 1;
            }
        }
    }
    (n, agreements)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustering(assignments: Vec<usize>) -> Clustering {
        let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
        Clustering::new(assignments, vec![vec![0.0]; k.max(1)])
    }

    #[test]
    fn identical_partitions_score_one() {
        let a = clustering(vec![0, 0, 1, 1, 2]);
        assert_eq!(rand_index(&a, &a), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
    }

    #[test]
    fn label_permutation_is_irrelevant() {
        let a = clustering(vec![0, 0, 1, 1]);
        let b = clustering(vec![1, 1, 0, 0]);
        assert_eq!(rand_index(&a, &b), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
    }

    #[test]
    fn orthogonal_partitions_score_low() {
        // a: {01}{23}; b: {02}{13} — no pair agreement on same-cluster.
        let a = clustering(vec![0, 0, 1, 1]);
        let b = clustering(vec![0, 1, 0, 1]);
        let ri = rand_index(&a, &b);
        assert!((ri - 1.0 / 3.0).abs() < 1e-12, "ri {ri}");
        assert!(adjusted_rand_index(&a, &b) < 0.1);
    }

    #[test]
    fn ari_near_zero_for_random_labels() {
        // Deterministic pseudo-random assignment vs a structured one.
        let a = clustering((0..200).map(|i| i / 50).collect());
        let b = clustering((0..200).map(|i| (i * 7919 + 13) % 4).collect());
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.1, "ari {ari}");
    }

    #[test]
    fn ari_exceeds_ri_discrimination() {
        // With many clusters, RI saturates near 1 while ARI stays honest.
        let a = clustering((0..60).map(|i| i / 6).collect());
        let b = clustering((0..60).map(|i| ((i + 3) % 60) / 6).collect());
        let ri = rand_index(&a, &b);
        let ari = adjusted_rand_index(&a, &b);
        assert!(ri > 0.8);
        assert!(ari < ri);
    }

    #[test]
    fn single_cluster_degenerate_case() {
        let a = clustering(vec![0, 0, 0]);
        let b = clustering(vec![0, 0, 0]);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn mismatched_sizes_rejected() {
        let a = clustering(vec![0, 0]);
        let b = clustering(vec![0, 0, 1]);
        rand_index(&a, &b);
    }

    #[test]
    fn empty_and_singleton() {
        let a = clustering(Vec::new());
        assert_eq!(rand_index(&a, &a), 1.0);
        let s = clustering(vec![0]);
        assert_eq!(adjusted_rand_index(&s, &s), 1.0);
    }
}
