//! Lloyd's k-means with k-means++ seeding.

use crate::clustering::Clustering;
use crate::init::kmeans_plus_plus;
use subset3d_obs::{LazyCounter, LazyHistogram};

// Aggregate fit metrics (recorded only while `subset3d_obs` is enabled),
// complementing the per-fit trace spans: fits run and wall time each.
static OBS_FITS: LazyCounter = LazyCounter::new("cluster.kmeans.fits");
static OBS_FIT_NS: LazyHistogram = LazyHistogram::new("cluster.kmeans.fit_ns");

/// k-means clustering configuration.
///
/// # Examples
///
/// ```
/// use subset3d_cluster::KMeans;
///
/// let points = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
/// let c = KMeans::new(2).seed(7).fit(&points);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.assignments()[0], c.assignments()[1]);
/// assert_ne!(c.assignments()[0], c.assignments()[2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeans {
    k: usize,
    max_iters: usize,
    seed: u64,
}

impl KMeans {
    /// Creates a k-means run with `k` clusters, default 50 Lloyd iterations
    /// and seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KMeans {
            k,
            max_iters: 50,
            seed: 0,
        }
    }

    /// Sets the RNG seed for initialisation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Lloyd iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters.max(1);
        self
    }

    /// Runs k-means. If fewer points than `k` exist, every point founds its
    /// own cluster. Empty clusters are reseeded with the point farthest from
    /// its centroid.
    pub fn fit(&self, points: &[Vec<f64>]) -> Clustering {
        if points.is_empty() {
            return Clustering::new(Vec::new(), Vec::new());
        }
        let k = self.k.min(points.len());
        let dim = points[0].len();
        OBS_FITS.incr();
        let _fit_timer = subset3d_obs::span(&OBS_FIT_NS);
        let mut fit_span = subset3d_obs::trace_span("cluster", "kmeans.fit");
        let mut iterations = 0u64;
        let mut centroids: Vec<Vec<f64>> = kmeans_plus_plus(points, k, self.seed)
            .into_iter()
            .map(|i| points[i].clone())
            .collect();
        let mut assignments = vec![0usize; points.len()];
        for _ in 0..self.max_iters {
            iterations += 1;
            // Assignment step.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let nearest = nearest_centroid(p, &centroids);
                if assignments[i] != nearest {
                    assignments[i] = nearest;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![vec![0.0; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (&a, p) in assignments.iter().zip(points) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(p) {
                    *s += v;
                }
            }
            for (ci, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
                if count > 0 {
                    for (c, s) in centroids[ci].iter_mut().zip(sum) {
                        *c = s / count as f64;
                    }
                } else {
                    // Reseed the empty cluster with the worst-fit point.
                    let far = farthest_point(points, &assignments, &centroids);
                    centroids[ci] = points[far].clone();
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        fit_span.set_arg("iterations", iterations);
        fit_span.end();
        // Final assignment against the final centroids.
        for (i, p) in points.iter().enumerate() {
            assignments[i] = nearest_centroid(p, &centroids);
        }
        let mut clustering = Clustering::new(assignments, centroids);
        clustering.drop_empty();
        clustering
    }
}

fn nearest_centroid(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn farthest_point(points: &[Vec<f64>], assignments: &[usize], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = -1.0;
    for (i, p) in points.iter().enumerate() {
        let d = sq_dist(p, &centroids[assignments[i]]);
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (8.0, 8.0), (0.0, 8.0)] {
            for i in 0..30 {
                pts.push(vec![cx + (i % 6) as f64 * 0.05, cy + (i / 6) as f64 * 0.05]);
            }
        }
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = blobs();
        let c = KMeans::new(3).seed(1).fit(&pts);
        assert_eq!(c.len(), 3);
        // Every blob maps to exactly one cluster.
        for blob in 0..3 {
            let ids: std::collections::BTreeSet<usize> =
                (0..30).map(|i| c.assignments()[blob * 30 + i]).collect();
            assert_eq!(ids.len(), 1, "blob {blob} split across {ids:?}");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let pts = blobs();
        let a = KMeans::new(3).seed(42).fit(&pts);
        let b = KMeans::new(3).seed(42).fit(&pts);
        assert_eq!(a, b);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = blobs();
        let i2 = KMeans::new(2).seed(5).fit(&pts).inertia(&pts);
        let i3 = KMeans::new(3).seed(5).fit(&pts).inertia(&pts);
        assert!(i3 < i2);
    }

    #[test]
    fn k_exceeding_points_gives_singletons() {
        let pts = vec![vec![0.0], vec![5.0]];
        let c = KMeans::new(10).fit(&pts);
        assert_eq!(c.len(), 2);
        assert_eq!(c.inertia(&pts), 0.0);
    }

    #[test]
    fn empty_input() {
        let c = KMeans::new(3).fit(&[]);
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_points_single_cluster_centroid() {
        let pts = vec![vec![2.0, 2.0]; 10];
        let c = KMeans::new(2).seed(9).fit(&pts);
        // All points identical: inertia must be zero whatever k resolves to.
        assert_eq!(c.inertia(&pts), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        KMeans::new(0);
    }
}
