//! Pluggable subsetting backends: one trait over every clustering
//! methodology the bake-off compares.
//!
//! A [`Subsetter`] turns a frame's feature vectors into a [`SubsetterFit`]
//! — a partition of the points plus one representative per cluster — which
//! is exactly the contract the paper's pipeline needs: simulate only the
//! representatives, scale by cluster population.
//!
//! Every backend fits over a *canonical ordering* of the input (points
//! sorted by vector content), so the resulting partition depends only on
//! the multiset of feature vectors, never on submission order. This is what
//! makes order-sensitive algorithms (leader clustering, systematic
//! sampling) permutation-invariant and lets one differential oracle cover
//! all backends.

use crate::bic::select_k_bic;
use crate::clustering::Clustering;
use crate::hierarchical::{Hierarchical, Linkage};
use crate::incremental::{IncrementalFit, OnlineKMeans, ReservoirIncremental};
use crate::kmeans::KMeans;
use crate::medoid::medoid_of;
use crate::threshold::ThresholdClustering;
use subset3d_stats::Pca;

/// Result of one backend fit: a partition plus representatives.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetterFit {
    /// The partition of the input points.
    pub clustering: Clustering,
    /// One representative point index per cluster, in cluster order. Each
    /// representative is a member of its cluster.
    pub representatives: Vec<usize>,
}

impl SubsetterFit {
    /// An empty fit (no points, no clusters).
    pub fn empty() -> Self {
        SubsetterFit {
            clustering: Clustering::new(Vec::new(), Vec::new()),
            representatives: Vec::new(),
        }
    }

    /// Checks the contract every backend must uphold: the clustering is a
    /// valid partition of `point_count` points, there is exactly one
    /// representative per cluster, and each representative belongs to the
    /// cluster it represents.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check(&self, point_count: usize) -> Result<(), String> {
        if self.clustering.point_count() != point_count {
            return Err(format!(
                "clustered {} of {point_count} points",
                self.clustering.point_count()
            ));
        }
        self.clustering.check_partition()?;
        if self.representatives.len() != self.clustering.len() {
            return Err(format!(
                "{} representatives for {} clusters",
                self.representatives.len(),
                self.clustering.len()
            ));
        }
        for (cluster, &rep) in self.representatives.iter().enumerate() {
            if rep >= point_count {
                return Err(format!(
                    "cluster {cluster} representative {rep} out of range"
                ));
            }
            if self.clustering.assignments()[rep] != cluster {
                return Err(format!(
                    "cluster {cluster} representative {rep} is assigned to cluster {}",
                    self.clustering.assignments()[rep]
                ));
            }
        }
        Ok(())
    }
}

/// A subsetting backend: feature vectors in, partition + representatives out.
///
/// Implementors provide [`Subsetter::fit_ordered`], which may assume its
/// input is canonically ordered; callers use [`Subsetter::fit`], which
/// sorts, delegates, and maps indices back to the caller's order.
pub trait Subsetter {
    /// Stable identifier for CLI flags, reports and trace labels.
    fn name(&self) -> &'static str;

    /// Fits points that are already in canonical (content-sorted) order.
    ///
    /// Implementations must be deterministic functions of the point
    /// *values*; they may rely on the ordering for order-sensitive
    /// algorithms.
    fn fit_ordered(&self, points: &[Vec<f64>]) -> SubsetterFit;

    /// Fits arbitrary points: canonicalises the order, delegates to
    /// [`Subsetter::fit_ordered`], and translates the result back to the
    /// input order. The returned partition therefore depends only on the
    /// multiset of point values.
    fn fit(&self, points: &[Vec<f64>]) -> SubsetterFit {
        if points.is_empty() {
            return SubsetterFit::empty();
        }
        let order = canonical_order(points);
        let sorted: Vec<Vec<f64>> = order.iter().map(|&i| points[i].clone()).collect();
        let fit = self.fit_ordered(&sorted);
        debug_assert!(fit.check(points.len()).is_ok(), "backend contract");
        let mut assignments = vec![0usize; points.len()];
        for (sorted_idx, &orig_idx) in order.iter().enumerate() {
            assignments[orig_idx] = fit.clustering.assignments()[sorted_idx];
        }
        let representatives = fit.representatives.iter().map(|&r| order[r]).collect();
        SubsetterFit {
            clustering: Clustering::new(assignments, fit.clustering.centroids().to_vec()),
            representatives,
        }
    }

    /// Creates a streaming fit for this backend: points arrive in chunks
    /// via [`IncrementalFit::ingest`] and [`IncrementalFit::fit`] re-emits
    /// an up-to-date partition between any two chunks.
    ///
    /// `capacity` bounds the retained points (clamped to at least one);
    /// `seed` drives the deterministic reservoir decisions. Implementations
    /// must be **chunk-boundary invariant** (state depends only on the point
    /// sequence) and **bit-identical to the batch fit** while
    /// `points_seen ≤ capacity`.
    fn incremental(&self, capacity: usize, seed: u64) -> Box<dyn IncrementalFit>;
}

/// The canonical point ordering every backend fits over: indices sorted by
/// lexicographic comparison of vector content (`f64::total_cmp`), original
/// index as the tie-break. Equal vectors are interchangeable, so the sorted
/// *value sequence* is a pure function of the input multiset.
pub fn canonical_order(points: &[Vec<f64>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        let va = &points[a];
        let vb = &points[b];
        va.len()
            .cmp(&vb.len())
            .then_with(|| {
                for (x, y) in va.iter().zip(vb.iter()) {
                    let c = x.total_cmp(y);
                    if c != std::cmp::Ordering::Equal {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            })
            .then(a.cmp(&b))
    });
    order
}

/// Builds a fit from a partition by electing each cluster's medoid as its
/// representative, dropping empty clusters first.
fn fit_with_medoids(points: &[Vec<f64>], mut clustering: Clustering) -> SubsetterFit {
    clustering.drop_empty();
    let representatives = clustering
        .members()
        .iter()
        .map(|members| medoid_of(points, members).expect("non-empty cluster has a medoid"))
        .collect();
    SubsetterFit {
        clustering,
        representatives,
    }
}

/// The paper's production backend: single-pass leader clustering at a
/// distance threshold, medoid representatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdSubsetter {
    /// Leader distance threshold (same units as the feature space).
    pub distance: f64,
}

impl ThresholdSubsetter {
    /// Creates a threshold backend with the given leader distance.
    pub fn new(distance: f64) -> Self {
        ThresholdSubsetter { distance }
    }
}

impl Subsetter for ThresholdSubsetter {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn fit_ordered(&self, points: &[Vec<f64>]) -> SubsetterFit {
        fit_with_medoids(points, ThresholdClustering::new(self.distance).fit(points))
    }

    fn incremental(&self, capacity: usize, seed: u64) -> Box<dyn IncrementalFit> {
        Box::new(ReservoirIncremental::new(*self, capacity, seed))
    }
}

/// k-means backend: either a fixed `k` or x-means-style BIC selection,
/// medoid representatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansSubsetter {
    mode: KMeansMode,
    seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KMeansMode {
    Bic { max_k: usize },
    Fixed { k: usize },
}

impl KMeansSubsetter {
    /// k-means with BIC model selection over `1..=max_k`.
    pub fn bic(max_k: usize, seed: u64) -> Self {
        KMeansSubsetter {
            mode: KMeansMode::Bic { max_k },
            seed,
        }
    }

    /// k-means with a fixed cluster count.
    pub fn fixed(k: usize, seed: u64) -> Self {
        KMeansSubsetter {
            mode: KMeansMode::Fixed { k },
            seed,
        }
    }
}

impl Subsetter for KMeansSubsetter {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn fit_ordered(&self, points: &[Vec<f64>]) -> SubsetterFit {
        let clustering = match self.mode {
            KMeansMode::Bic { max_k } => {
                select_k_bic(points, 1..=max_k.min(points.len()).max(1), self.seed)
            }
            KMeansMode::Fixed { k } => KMeans::new(k.max(1)).seed(self.seed).fit(points),
        };
        fit_with_medoids(points, clustering)
    }

    fn incremental(&self, capacity: usize, seed: u64) -> Box<dyn IncrementalFit> {
        // MacQueen centroids keep learning from the whole stream; the k
        // bound mirrors the batch mode's search ceiling.
        let k = match self.mode {
            KMeansMode::Bic { max_k } => max_k,
            KMeansMode::Fixed { k } => k,
        };
        Box::new(OnlineKMeans::new(*self, k, capacity, seed))
    }
}

/// Two-phase stratified sampling (after *CPU Simulation Using Two-Phase
/// Stratified Sampling*): phase one buckets points into equal-population
/// strata on a cheap scalar key (the feature-vector component sum); phase
/// two draws a proportional systematic sample within each stratum. The
/// samples are the representatives; every point joins its nearest sample
/// within its stratum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratifiedSubsetter {
    /// Number of strata on the cheap scalar key.
    pub strata: usize,
    /// Within-stratum sampling rate in `(0, 1]`; each stratum keeps at
    /// least one sample.
    pub rate: f64,
    /// Seed for the systematic-sampling phase offset.
    pub seed: u64,
}

impl StratifiedSubsetter {
    /// Creates a stratified backend.
    ///
    /// # Panics
    ///
    /// Panics if `strata` is zero or `rate` is not in `(0, 1]`.
    pub fn new(strata: usize, rate: f64, seed: u64) -> Self {
        assert!(strata > 0, "strata must be positive");
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        StratifiedSubsetter { strata, rate, seed }
    }
}

impl Subsetter for StratifiedSubsetter {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn fit_ordered(&self, points: &[Vec<f64>]) -> SubsetterFit {
        let n = points.len();
        // Phase 1: stratify on the cheap scalar key. The canonical input
        // order makes the (key, index) sort a pure function of content.
        let keys: Vec<f64> = points.iter().map(|p| p.iter().sum()).collect();
        let mut by_key: Vec<usize> = (0..n).collect();
        by_key.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]).then(a.cmp(&b)));
        let strata = self.strata.min(n);

        let mut samples: Vec<usize> = Vec::new();
        for s in 0..strata {
            // Equal-population quantile strata over the key-sorted order.
            let lo = s * n / strata;
            let hi = (s + 1) * n / strata;
            let members = &by_key[lo..hi];
            let size = members.len();
            if size == 0 {
                continue;
            }
            // Phase 2: proportional systematic sample, at least one per
            // stratum; the seed rotates the sampling phase deterministically.
            let count = ((size as f64 * self.rate).round() as usize).clamp(1, size);
            let stride = size as f64 / count as f64;
            let phase = (self.seed.wrapping_add(s as u64) % 997) as f64 / 997.0;
            for j in 0..count {
                let idx = ((j as f64 + phase) * stride) as usize;
                samples.push(members[idx.min(size - 1)]);
            }
        }

        // Each point joins its nearest sample *within its stratum*; strata
        // are disjoint key ranges, so search all samples — the nearest one
        // by key-distance-0 tie-break is resolved by squared distance with
        // first-sample preference, which keeps duplicate samples empty.
        let mut assignments = vec![0usize; n];
        for (i, point) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (label, &sample) in samples.iter().enumerate() {
                let d: f64 = point
                    .iter()
                    .zip(&points[sample])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = label;
                }
            }
            assignments[i] = best;
        }

        // Duplicate samples (identical vectors) lose every tie to the
        // first, leaving their cluster empty; compact those away so each
        // surviving cluster contains its own sample.
        let mut counts = vec![0usize; samples.len()];
        for &a in &assignments {
            counts[a] += 1;
        }
        let mut remap = vec![usize::MAX; samples.len()];
        let mut kept_samples = Vec::new();
        let mut centroids = Vec::new();
        for (label, &sample) in samples.iter().enumerate() {
            if counts[label] > 0 {
                remap[label] = kept_samples.len();
                kept_samples.push(sample);
                centroids.push(points[sample].clone());
            }
        }
        for a in &mut assignments {
            *a = remap[*a];
        }
        SubsetterFit {
            clustering: Clustering::new(assignments, centroids),
            representatives: kept_samples,
        }
    }

    fn incremental(&self, capacity: usize, seed: u64) -> Box<dyn IncrementalFit> {
        Box::new(ReservoirIncremental::new(*self, capacity, seed))
    }
}

/// PCA + agglomerative backend (after *Characterizing and Subsetting Big
/// Data Workloads*): power-iteration PCA decorrelates the features, then
/// average-linkage agglomerative merging reduces to a target cluster
/// count; medoid representatives in the projected space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcaAggloSubsetter {
    /// Principal components to keep (clamped to the dimensionality).
    pub components: usize,
    /// Target cluster count (clamped to the point count).
    pub clusters: usize,
}

impl PcaAggloSubsetter {
    /// Creates a PCA + agglomerative backend.
    ///
    /// # Panics
    ///
    /// Panics if `components` or `clusters` is zero.
    pub fn new(components: usize, clusters: usize) -> Self {
        assert!(components > 0, "components must be positive");
        assert!(clusters > 0, "clusters must be positive");
        PcaAggloSubsetter {
            components,
            clusters,
        }
    }
}

impl Subsetter for PcaAggloSubsetter {
    fn name(&self) -> &'static str {
        "pca-agglo"
    }

    fn fit_ordered(&self, points: &[Vec<f64>]) -> SubsetterFit {
        let dim = points.first().map_or(0, Vec::len);
        // Degenerate inputs (one point, zero variance) fall back to the raw
        // feature space; the merge handles them either way.
        let projected: Vec<Vec<f64>> = match Pca::fit(points, self.components.min(dim).max(1)) {
            Ok(pca) if !pca.components().is_empty() => {
                points.iter().map(|p| pca.project(p)).collect()
            }
            _ => points.to_vec(),
        };
        let k = self.clusters.min(points.len()).max(1);
        let clustering = Hierarchical::with_cluster_count(Linkage::Average, k).fit(&projected);
        fit_with_medoids(&projected, clustering)
    }

    fn incremental(&self, capacity: usize, seed: u64) -> Box<dyn IncrementalFit> {
        Box::new(ReservoirIncremental::new(*self, capacity, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<Box<dyn Subsetter>> {
        vec![
            Box::new(ThresholdSubsetter::new(0.8)),
            Box::new(KMeansSubsetter::bic(6, 42)),
            Box::new(KMeansSubsetter::fixed(4, 42)),
            Box::new(StratifiedSubsetter::new(4, 0.25, 7)),
            Box::new(PcaAggloSubsetter::new(2, 5)),
        ]
    }

    fn sample_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                vec![(t * 0.7).sin() * 3.0, (t * 1.3).cos() * 2.0, t % 5.0]
            })
            .collect()
    }

    #[test]
    fn every_backend_upholds_the_contract() {
        let points = sample_points(40);
        for backend in backends() {
            let fit = backend.fit(&points);
            fit.check(points.len())
                .unwrap_or_else(|e| panic!("{}: {e}", backend.name()));
            assert!(!fit.clustering.is_empty(), "{}", backend.name());
        }
    }

    #[test]
    fn empty_input_fits_to_nothing() {
        for backend in backends() {
            let fit = backend.fit(&[]);
            assert_eq!(fit.clustering.len(), 0, "{}", backend.name());
            assert!(fit.representatives.is_empty());
        }
    }

    #[test]
    fn single_point_is_its_own_representative() {
        for backend in backends() {
            let fit = backend.fit(&[vec![1.0, 2.0]]);
            assert_eq!(fit.clustering.len(), 1, "{}", backend.name());
            assert_eq!(fit.representatives, vec![0], "{}", backend.name());
        }
    }

    #[test]
    fn fit_is_permutation_invariant_up_to_content() {
        let points = sample_points(30);
        // A fixed shuffle (reversal plus interleave) of the input.
        let perm: Vec<usize> = (0..points.len())
            .map(|i| {
                if i % 2 == 0 {
                    i / 2
                } else {
                    points.len() - 1 - i / 2
                }
            })
            .collect();
        let shuffled: Vec<Vec<f64>> = perm.iter().map(|&i| points[i].clone()).collect();
        for backend in backends() {
            let a = backend.fit(&points);
            let b = backend.fit(&shuffled);
            // Same partition content: point perm[i] of the original is
            // point i of the shuffle, and labels are canonical, so the
            // label sequences must correspond under the permutation.
            let relabeled: Vec<usize> = perm
                .iter()
                .map(|&i| a.clustering.assignments()[i])
                .collect();
            assert_eq!(
                relabeled,
                b.clustering.assignments(),
                "{} assignments not permutation-invariant",
                backend.name()
            );
            // Representative *vectors* (not indices) are invariant.
            let reps_a: Vec<&Vec<f64>> = a.representatives.iter().map(|&r| &points[r]).collect();
            let reps_b: Vec<&Vec<f64>> = b.representatives.iter().map(|&r| &shuffled[r]).collect();
            assert_eq!(reps_a, reps_b, "{} representatives moved", backend.name());
        }
    }

    #[test]
    fn canonical_order_sorts_by_content() {
        let points = vec![
            vec![2.0, 0.0],
            vec![1.0, 5.0],
            vec![1.0, 3.0],
            vec![1.0, 3.0],
        ];
        assert_eq!(canonical_order(&points), vec![2, 3, 1, 0]);
    }

    #[test]
    fn stratified_rate_bounds_sample_count() {
        let points = sample_points(64);
        let sparse = StratifiedSubsetter::new(4, 0.1, 0).fit(&points);
        let dense = StratifiedSubsetter::new(4, 0.9, 0).fit(&points);
        assert!(sparse.clustering.len() <= dense.clustering.len());
        // 4 strata × ≥1 sample each, duplicates aside.
        assert!(!sparse.clustering.is_empty());
        assert!(dense.clustering.len() <= 64);
    }

    #[test]
    fn pca_agglo_hits_the_target_count() {
        let points = sample_points(20);
        let fit = PcaAggloSubsetter::new(2, 5).fit(&points);
        assert_eq!(fit.clustering.len(), 5);
    }

    #[test]
    fn threshold_backend_matches_partition_of_direct_threshold_on_sorted_input() {
        // On already-canonical input the trait adds nothing but medoids.
        let points = sample_points(25);
        let order = canonical_order(&points);
        let sorted: Vec<Vec<f64>> = order.iter().map(|&i| points[i].clone()).collect();
        let direct = ThresholdClustering::new(0.8).fit(&sorted);
        let via_trait = ThresholdSubsetter::new(0.8).fit(&sorted);
        assert_eq!(direct.assignments(), via_trait.clustering.assignments());
    }
}
