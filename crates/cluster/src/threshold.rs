//! Single-pass threshold (leader) clustering.
//!
//! The production algorithm of the subsetting pipeline: each point joins the
//! first existing cluster whose *leader* lies within the distance threshold,
//! otherwise it founds a new cluster. The cluster count — and therefore the
//! clustering efficiency — emerges from the threshold, mirroring how the
//! paper reports efficiency as a measured outcome rather than a parameter.

use crate::clustering::Clustering;
use subset3d_obs::{LazyCounter, LazyHistogram};

// Aggregate fit metrics (recorded only while `subset3d_obs` is enabled),
// complementing the per-fit trace spans: fits run and wall time each.
static OBS_FITS: LazyCounter = LazyCounter::new("cluster.threshold.fits");
static OBS_FIT_NS: LazyHistogram = LazyHistogram::new("cluster.threshold.fit_ns");

/// Leader clustering with a Euclidean distance threshold.
///
/// # Examples
///
/// ```
/// use subset3d_cluster::ThresholdClustering;
///
/// let points = vec![vec![0.0], vec![0.2], vec![10.0]];
/// let c = ThresholdClustering::new(1.0).fit(&points);
/// assert_eq!(c.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdClustering {
    threshold: f64,
}

impl ThresholdClustering {
    /// Creates the algorithm with a distance threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or NaN.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold >= 0.0,
            "threshold must be non-negative, got {threshold}"
        );
        ThresholdClustering { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Clusters the points. Deterministic: points are scanned in order and
    /// leaders are compared in creation order. Centroids of the result are
    /// the cluster *leaders* (first members).
    ///
    /// Distance comparisons abort as soon as the partial sum exceeds the
    /// threshold, which makes workload-global clustering (hundreds of
    /// thousands of points against thousands of leaders) tractable.
    pub fn fit(&self, points: &[Vec<f64>]) -> Clustering {
        OBS_FITS.incr();
        let _fit_timer = subset3d_obs::span(&OBS_FIT_NS);
        let _t =
            subset3d_obs::trace_span_arg("cluster", "threshold.fit", "points", points.len() as u64);
        let mut leaders: Vec<usize> = Vec::new();
        let mut assignments = Vec::with_capacity(points.len());
        let threshold_sq = self.threshold * self.threshold;
        for p in points {
            let mut assigned = None;
            for (ci, &leader) in leaders.iter().enumerate() {
                if within_sq(p, &points[leader], threshold_sq) {
                    assigned = Some(ci);
                    break;
                }
            }
            match assigned {
                Some(ci) => assignments.push(ci),
                None => {
                    assignments.push(leaders.len());
                    leaders.push(assignments.len() - 1);
                }
            }
        }
        let centroids = leaders.into_iter().map(|i| points[i].clone()).collect();
        Clustering::new(assignments, centroids)
    }
}

/// Early-exit squared-distance test: `‖a − b‖² ≤ limit`.
fn within_sq(a: &[f64], b: &[f64], limit: f64) -> bool {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
        if acc > limit {
            return false;
        }
    }
    true
}

#[cfg(test)]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threshold_groups_only_identical_points() {
        let points = vec![vec![1.0], vec![1.0], vec![2.0], vec![1.0]];
        let c = ThresholdClustering::new(0.0).fit(&points);
        assert_eq!(c.len(), 2);
        assert_eq!(c.assignments(), &[0, 0, 1, 0]);
    }

    #[test]
    fn huge_threshold_single_cluster() {
        let points = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![-3.0, 2.0]];
        let c = ThresholdClustering::new(100.0).fit(&points);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn members_within_threshold_of_leader() {
        let points: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10) as f64 * 0.05]).collect();
        let t = 0.2;
        let c = ThresholdClustering::new(t).fit(&points);
        for (i, &a) in c.assignments().iter().enumerate() {
            let d = sq_dist(&points[i], &c.centroids()[a]).sqrt();
            assert!(d <= t + 1e-12, "point {i} at distance {d}");
        }
    }

    #[test]
    fn cluster_count_monotone_in_threshold() {
        let points: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i as f64 * 0.37).sin() * 3.0])
            .collect();
        let mut prev = usize::MAX;
        for t in [0.0, 0.1, 0.5, 1.0, 5.0] {
            let n = ThresholdClustering::new(t).fit(&points).len();
            assert!(n <= prev, "threshold {t} gave {n} > {prev}");
            prev = n;
        }
    }

    #[test]
    fn empty_input_empty_clustering() {
        let c = ThresholdClustering::new(1.0).fit(&[]);
        assert!(c.is_empty());
        assert_eq!(c.point_count(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_rejected() {
        ThresholdClustering::new(-1.0);
    }
}
