//! Property tests across all clustering algorithms: every algorithm must
//! produce a valid partition, and algorithm-specific invariants must hold
//! on arbitrary data.

use proptest::prelude::*;
use subset3d_cluster::{
    adjusted_rand_index, bic_score, silhouette_score, Clustering, Hierarchical, KMeans, Linkage,
    ThresholdClustering,
};

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 2), 2..40)
}

fn assert_partition(c: &Clustering, n: usize) {
    assert_eq!(c.point_count(), n);
    let mut seen = vec![false; n];
    for members in c.members() {
        assert!(!members.is_empty(), "no empty clusters in output");
        for m in members {
            assert!(!seen[m]);
            seen[m] = true;
        }
    }
    assert!(seen.into_iter().all(|s| s));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_produces_valid_partitions(points in points_strategy(), k in 1usize..8) {
        let c = KMeans::new(k).seed(3).fit(&points);
        assert_partition(&c, points.len());
        prop_assert!(c.len() <= k.min(points.len()));
        prop_assert!(c.inertia(&points) >= 0.0);
    }

    #[test]
    fn hierarchical_produces_valid_partitions(points in points_strategy(), k in 1usize..6) {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = Hierarchical::with_cluster_count(linkage, k).fit(&points);
            assert_partition(&c, points.len());
            prop_assert!(c.len() <= points.len());
            prop_assert!(c.len() >= k.min(points.len()).min(c.len()));
        }
    }

    #[test]
    fn hierarchical_cutoff_monotone(points in points_strategy()) {
        // A larger cutoff can only merge more.
        let tight = Hierarchical::with_distance_cutoff(Linkage::Average, 1.0).fit(&points);
        let loose = Hierarchical::with_distance_cutoff(Linkage::Average, 20.0).fit(&points);
        prop_assert!(loose.len() <= tight.len());
    }

    #[test]
    fn threshold_vs_itself_is_identical(points in points_strategy(), t in 0.0f64..20.0) {
        let a = ThresholdClustering::new(t).fit(&points);
        let b = ThresholdClustering::new(t).fit(&points);
        prop_assert_eq!(adjusted_rand_index(&a, &b), 1.0);
    }

    #[test]
    fn bic_is_finite_for_valid_clusterings(points in points_strategy(), k in 1usize..5) {
        let c = KMeans::new(k).seed(1).fit(&points);
        let score = bic_score(&points, &c);
        prop_assert!(score.is_finite() || score == f64::NEG_INFINITY);
    }

    #[test]
    fn silhouette_bounded_when_defined(points in points_strategy(), k in 2usize..5) {
        let c = KMeans::new(k).seed(2).fit(&points);
        if let Some(s) = silhouette_score(&points, &c) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "s = {s}");
        }
    }

    #[test]
    fn ari_symmetric_and_bounded(points in points_strategy(), ka in 1usize..5, kb in 1usize..5) {
        let a = KMeans::new(ka).seed(5).fit(&points);
        let b = KMeans::new(kb).seed(6).fit(&points);
        let ab = adjusted_rand_index(&a, &b);
        let ba = adjusted_rand_index(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab <= 1.0 + 1e-9);
    }
}
