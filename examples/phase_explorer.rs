//! Phase explorer: visualise the shader-vector phase structure of a game
//! and compare detection against the generator's ground truth.
//!
//! ```sh
//! cargo run --release --example phase_explorer
//! ```

use subset3d::core::{PhaseDetector, PhasePattern};
use subset3d::prelude::*;
use subset3d::trace::gen::PhaseKind;

fn letter(id: usize) -> char {
    (b'A' + (id % 26) as u8) as char
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (workload, truth) = GameProfile::shooter("explorer-game")
        .frames(120)
        .draws_per_frame(400)
        .build(7)
        .generate_with_truth();

    // Ground truth: what the generator scripted.
    println!("scripted segments:");
    for segment in truth.script.segments() {
        println!("  {:>9} frames  {:?}", segment.frames, segment.kind);
    }

    // Detection: what shader vectors reveal (the detector never sees the
    // script).
    let interval = 5;
    let analysis = PhaseDetector::new(interval)
        .with_similarity(0.85)
        .detect(&workload)?;
    let timeline: String = analysis.sequence().iter().map(|&p| letter(p)).collect();
    println!(
        "\ndetected timeline ({} frames per letter): {timeline}",
        interval
    );

    let pattern = PhasePattern::of(&analysis);
    println!(
        "{} phases, {} recurring, mean run {:.1} intervals, repeat coverage {:.0}%",
        analysis.phase_count(),
        pattern.recurring_phases,
        pattern.mean_run_length(),
        analysis.repeat_coverage() * 100.0
    );

    // How well do detected phases align with scripted areas?
    println!("\nper-phase ground-truth composition:");
    for phase in &analysis.phases {
        let mut kinds: std::collections::BTreeMap<PhaseKind, usize> = Default::default();
        for &iv in &phase.intervals {
            for f in analysis.intervals[iv].frames() {
                *kinds.entry(truth.per_frame[f]).or_default() += 1;
            }
        }
        let composition: Vec<String> = kinds.iter().map(|(k, n)| format!("{k:?}×{n}")).collect();
        println!(
            "  phase {} ({} shaders, {} occurrences): {}",
            letter(phase.id),
            phase.signature.len(),
            phase.occurrences(),
            composition.join(", ")
        );
    }
    Ok(())
}
