//! Building a custom workload: a bespoke phase script, trace validation,
//! binary round-trip, and a per-class cost breakdown.
//!
//! ```sh
//! cargo run --release --example custom_game
//! ```

use subset3d::gpusim::Stage;
use subset3d::prelude::*;
use subset3d::trace::gen::{PhaseKind, PhaseScript};
use subset3d::trace::{decode_workload, encode_workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bespoke script: a boss-rush game that keeps returning to one arena.
    let script = PhaseScript::from_weights(
        90,
        &[
            (PhaseKind::Menu, 5.0),
            (PhaseKind::Explore(0), 10.0),
            (PhaseKind::Combat(0), 15.0),
            (PhaseKind::Explore(1), 8.0),
            (PhaseKind::Combat(0), 15.0),
            (PhaseKind::Cutscene(0), 5.0),
            (PhaseKind::Combat(0), 20.0),
        ],
    );
    let workload = GameProfile::shooter("boss-rush")
        .script(script)
        .draws_per_frame(500)
        .shader_variants(5)
        .materials_per_class(14)
        .build(0xB055)
        .generate();

    // The generator guarantees well-formed traces; prove it.
    let issues = workload.validate();
    assert!(issues.is_empty(), "trace validation failed: {issues:?}");
    println!(
        "generated {} frames / {} draws; trace is well-formed",
        workload.frames().len(),
        workload.total_draws()
    );

    // Compact binary round-trip (the storage format for corpus-scale
    // traces).
    let bytes = encode_workload(&workload);
    let decoded = decode_workload(&bytes)?;
    assert_eq!(workload, decoded);
    println!(
        "binary trace: {:.2} MiB, round-trips exactly",
        bytes.len() as f64 / (1 << 20) as f64
    );

    // Where does this game spend its GPU time?
    let sim = Simulator::new(ArchConfig::baseline());
    let cost = sim.simulate_workload(&workload)?;
    let mut by_stage: std::collections::BTreeMap<String, f64> = Default::default();
    for frame in &cost.frames {
        for draw in &frame.draws {
            *by_stage
                .entry(format!("{:?}", draw.bottleneck))
                .or_default() += draw.time_ns;
        }
    }
    println!("\nbottleneck breakdown (fraction of GPU time):");
    let mut rows: Vec<(String, f64)> = by_stage.into_iter().collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (stage, ns) in rows {
        println!("  {:<12} {:>5.1}%", stage, ns / cost.total_ns * 100.0);
    }
    let _ = Stage::ALL; // stages enumerated above via Debug names

    // And subset it like any other workload.
    let outcome = Subsetter::new(SubsetConfig::default()).run(&workload, &sim)?;
    println!(
        "\nsubset: {:.3}% of draws across {} phases",
        outcome.subset.draw_fraction() * 100.0,
        outcome.phases.phase_count()
    );
    Ok(())
}
