//! Suite workflow: the paper's real setting — subset a corpus of games at
//! once and validate the suite-level estimate under frequency scaling.
//!
//! ```sh
//! cargo run --release --example suite_workflow
//! ```

use subset3d::core::{validate_suite_scaling, Table};
use subset3d::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-genre mini-corpus.
    let suite = vec![
        GameProfile::shooter("alpha")
            .frames(40)
            .draws_per_frame(500)
            .build(1)
            .generate(),
        GameProfile::rts("bravo")
            .frames(36)
            .draws_per_frame(450)
            .build(2)
            .generate(),
        GameProfile::racing("charlie")
            .frames(32)
            .draws_per_frame(400)
            .build(3)
            .generate(),
    ];
    let sim = Simulator::new(ArchConfig::baseline());

    // One pipeline invocation covers the whole suite.
    let outcome = subset_suite(&suite, &SubsetConfig::default().with_interval_len(5), &sim)?;

    let mut table = Table::new(vec!["game", "efficiency", "error", "phases", "subset size"]);
    for (w, (name, o)) in suite.iter().zip(&outcome.games) {
        let summary = o.summary(w);
        table.row(vec![
            name.clone(),
            format!("{:.1}%", summary.mean_efficiency * 100.0),
            format!("{:.2}%", summary.mean_prediction_error * 100.0),
            summary.phase_count.to_string(),
            format!("{:.2}%", summary.subset_fraction * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "suite: {:.1}% mean efficiency, {:.2}% mean error, {:.2}% of all draws kept\n",
        outcome.mean_efficiency() * 100.0,
        outcome.mean_prediction_error() * 100.0,
        outcome.suite_draw_fraction(&suite) * 100.0,
    );

    // Suite-level validation: total suite time, both ways, across clocks.
    let sweep = FrequencySweep::standard();
    let (parent, subset, r) =
        validate_suite_scaling(&suite, &outcome, &ArchConfig::baseline(), &sweep)?;
    let mut table = Table::new(vec!["core MHz", "parent improvement", "subset improvement"]);
    for ((mhz, p), s) in sweep.points_mhz().iter().zip(&parent).zip(&subset) {
        table.row(vec![
            format!("{mhz:.0}"),
            format!("{p:.4}x"),
            format!("{s:.4}x"),
        ]);
    }
    println!("{}", table.render());
    println!("suite scaling correlation: r = {r:.4} (paper: 0.997+)");
    Ok(())
}
