//! Architecture pathfinding with subsets — the paper's motivating use-case.
//!
//! Ranks six candidate GPU designs two ways: by full-trace simulation and
//! by replaying only the extracted subset, then compares the orderings and
//! the simulation cost saved.
//!
//! ```sh
//! cargo run --release --example pathfinding_sweep
//! ```

use subset3d::core::{pathfinding_rank_validation, Table};
use subset3d::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = GameProfile::shooter("pathfinder-game")
        .frames(80)
        .draws_per_frame(1000)
        .build(42)
        .generate();
    let sim = Simulator::new(ArchConfig::baseline());
    let outcome = Subsetter::new(SubsetConfig::default()).run(&workload, &sim)?;
    let subset = &outcome.subset;
    println!(
        "subset keeps {:.3}% of draws; every candidate below is evaluated both ways\n",
        subset.draw_fraction() * 100.0
    );

    let candidates = ArchConfig::pathfinding_candidates();
    let (parent, estimate, agreement) =
        pathfinding_rank_validation(&workload, subset, &candidates)?;

    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| parent[a].partial_cmp(&parent[b]).unwrap());
    let mut table = Table::new(vec!["rank", "design", "full-trace time", "subset estimate"]);
    for (rank, &i) in order.iter().enumerate() {
        table.row(vec![
            (rank + 1).to_string(),
            candidates[i].name.clone(),
            format!("{:.2}ms", parent[i] / 1e6),
            format!("{:.2}ms", estimate[i] / 1e6),
        ]);
    }
    println!("{}", table.render());
    println!("rank agreement: {:.0}%", agreement * 100.0);
    println!(
        "simulation work: {} draws full-trace vs {} draws via subset ({}x less)",
        workload.total_draws() * candidates.len(),
        subset.selected_draw_count() * candidates.len(),
        workload.total_draws() / subset.selected_draw_count().max(1),
    );
    Ok(())
}
