//! DVFS energy pathfinding with subsets: pick the energy-optimal operating
//! point of a design without full-trace simulation.
//!
//! ```sh
//! cargo run --release --example energy_pathfinding
//! ```

use subset3d::core::Table;
use subset3d::gpusim::{energy_delay_product, Energy, PowerModel};
use subset3d::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = GameProfile::shooter("dvfs-game")
        .frames(60)
        .draws_per_frame(700)
        .build(11)
        .generate();
    let base = ArchConfig::baseline();
    let sim = Simulator::new(base.clone());
    let outcome = Subsetter::new(SubsetConfig::default()).run(&workload, &sim)?;
    println!(
        "subset keeps {:.2}% of draws; sweeping DVFS points both ways\n",
        outcome.subset.draw_fraction() * 100.0
    );

    let sweep = FrequencySweep::standard();
    let mut table = Table::new(vec![
        "core MHz",
        "parent energy",
        "subset energy",
        "parent EDP",
        "subset EDP",
    ]);
    let mut best_parent = (f64::INFINITY, 0.0);
    let mut best_subset = (f64::INFINITY, 0.0);
    for config in sweep.configs(&base) {
        let model = PowerModel::default_for(&config);
        let sim = Simulator::new(config.clone());

        // Full-trace view.
        let parent_cost = sim.simulate_workload(&workload)?;
        let parent_energy = model.workload_energy(&parent_cost, &config);
        let parent_edp = energy_delay_product(&parent_energy, parent_cost.total_ns);

        // Subset view: weighted per-draw energies from the detailed replay.
        let replay = outcome.subset.replay_detailed(&workload, &sim)?;
        let mut subset_energy = Energy::default();
        for frame in &replay.frames {
            for (weight, cost) in &frame.draws {
                let mut e = model.draw_energy(cost, &config);
                let scale = weight * frame.frame_weight;
                e.dynamic_nj *= scale;
                e.static_nj *= scale;
                e.memory_nj *= scale;
                subset_energy.accumulate(e);
            }
        }
        let subset_edp = energy_delay_product(&subset_energy, replay.estimated_ns);

        if parent_edp < best_parent.0 {
            best_parent = (parent_edp, config.core_clock_mhz);
        }
        if subset_edp < best_subset.0 {
            best_subset = (subset_edp, config.core_clock_mhz);
        }
        table.row(vec![
            format!("{:.0}", config.core_clock_mhz),
            format!("{:.2} J", parent_energy.total_nj() * 1e-9),
            format!("{:.2} J", subset_energy.total_nj() * 1e-9),
            format!("{:.3}", parent_edp * 1e-18),
            format!("{:.3}", subset_edp * 1e-18),
        ]);
    }
    println!("{}", table.render());
    println!(
        "EDP-optimal clock: full trace says {} MHz, subset says {} MHz",
        best_parent.1 as u64, best_subset.1 as u64
    );
    assert_eq!(
        best_parent.1 as u64, best_subset.1 as u64,
        "subset must pick the same operating point"
    );
    Ok(())
}
