//! Quickstart: subset a synthetic game and check the paper's headline
//! metrics on it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use subset3d::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic BioShock-like trace: 60 frames, ~800 draws per frame,
    //    fully deterministic from the seed.
    let workload = GameProfile::shooter("quickstart-game")
        .frames(60)
        .draws_per_frame(800)
        .build(2015)
        .generate();
    println!(
        "workload: {} frames, {} draw-calls, {} shaders",
        workload.frames().len(),
        workload.total_draws(),
        workload.shaders().len()
    );

    // 2. A baseline GPU design point and its simulator.
    let sim = Simulator::new(ArchConfig::baseline());

    // 3. Run the full subsetting pipeline: per-frame draw clustering,
    //    shader-vector phase detection, subset assembly.
    let outcome = Subsetter::new(SubsetConfig::default()).run(&workload, &sim)?;

    println!(
        "clustering: {:.1}% efficiency, {:.2}% prediction error, {:.2}% outlier clusters",
        outcome.evaluation.mean_efficiency() * 100.0,
        outcome.evaluation.mean_prediction_error() * 100.0,
        outcome.evaluation.outlier_fraction() * 100.0,
    );
    println!(
        "phases: {} detected across {} intervals (repeat coverage {:.0}%)",
        outcome.phases.phase_count(),
        outcome.phases.intervals.len(),
        outcome.phases.repeat_coverage() * 100.0,
    );
    println!(
        "subset: {} of {} draws ({:.3}% of parent)",
        outcome.subset.selected_draw_count(),
        workload.total_draws(),
        outcome.subset.draw_fraction() * 100.0,
    );

    // 4. Validate: does the subset respond to frequency scaling like the
    //    parent? (The paper's correlation-coefficient experiment.)
    let sweep = FrequencySweep::standard();
    let validation = subset3d::core::frequency_scaling_validation(
        &workload,
        &outcome.subset,
        &ArchConfig::baseline(),
        &sweep,
    )?;
    println!(
        "frequency scaling correlation: r = {:.4} (paper: 0.997+)",
        validation.correlation
    );
    Ok(())
}
