//! Failure injection: the system must reject corrupted inputs with typed
//! errors — never panic, never return garbage silently.

use proptest::prelude::*;
use subset3d::core::{SubsetConfig, SubsetError, Subsetter};
use subset3d::gpusim::{ArchConfig, SimError, Simulator};
use subset3d::trace::gen::GameProfile;
use subset3d::trace::{decode_workload, encode_workload, Frame, ShaderId, Workload};

fn game(seed: u64) -> Workload {
    GameProfile::shooter("victim")
        .frames(6)
        .draws_per_frame(30)
        .build(seed)
        .generate()
}

/// Rebuilds a workload with one draw's pixel shader dangling.
fn corrupt_shader(w: &Workload) -> Workload {
    let mut frames: Vec<Frame> = w.frames().to_vec();
    let mut draws = frames[2].to_draws();
    draws[5].pixel_shader = ShaderId(u32::MAX);
    frames[2] = Frame::new(frames[2].id, draws);
    Workload::new(
        w.name.clone(),
        frames,
        w.shaders().clone(),
        w.textures().clone(),
        w.states().clone(),
    )
}

#[test]
fn dangling_shader_fails_simulation_and_pipeline() {
    let w = corrupt_shader(&game(1));
    // Validation sees it…
    assert!(!w.validate().is_empty());
    // …simulation reports it as a typed error…
    let sim = Simulator::new(ArchConfig::baseline());
    assert!(matches!(
        sim.simulate_workload(&w),
        Err(SimError::UnknownShader { .. })
    ));
    // …and the pipeline propagates it.
    assert!(matches!(
        Subsetter::new(SubsetConfig::default()).run(&w, &sim),
        Err(SubsetError::Simulation(_))
    ));
}

#[test]
fn truncation_at_every_prefix_is_an_error_not_a_panic() {
    let w = game(2);
    let bytes = encode_workload(&w);
    // Exhaustively truncate the header region, then sample the body.
    for cut in (0..64.min(bytes.len())).chain((64..bytes.len()).step_by(997)) {
        let result = decode_workload(&bytes[..cut]);
        assert!(
            result.is_err(),
            "prefix of {cut} bytes decoded successfully"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_workload(&bytes);
    }

    /// Single-byte corruption of a valid trace either still decodes (the
    /// flip hit payload data) or fails with a typed error — it never
    /// panics.
    #[test]
    fn decoder_survives_single_byte_flips(offset in 0usize..4096, flip in 1u8..=255) {
        let w = game(3);
        let mut bytes = encode_workload(&w).to_vec();
        let idx = offset % bytes.len();
        bytes[idx] ^= flip;
        // A payload flip may decode to a different (possibly invalid)
        // workload; validation is the next line of defence and must not
        // panic either.
        if let Ok(decoded) = decode_workload(&bytes) {
            let _ = decoded.validate();
        }
    }
}

#[test]
fn simulator_is_finite_on_extreme_draws() {
    // Hand-build degenerate draws at the edges of the parameter space and
    // confirm costs stay finite and non-negative.
    let w = game(4);
    let sim = Simulator::new(ArchConfig::baseline());
    let template = w.frames()[0].draw(0).expect("draw 0");
    let mut extremes = Vec::new();
    for (vertex_count, coverage, overdraw, instances) in [
        (1u64, 0.0f64, 0.0f64, 1u32),
        (100_000_000, 1.0, 50.0, 1),
        (3, 1e-9, 1.0, 65_535),
        (3, 1.0, 1.0, 1),
    ] {
        let mut d = template.clone();
        d.vertex_count = vertex_count;
        d.coverage = coverage;
        d.overdraw = overdraw;
        d.instance_count = instances;
        extremes.push(d);
    }
    for draw in &extremes {
        let cost = sim.simulate_draw(draw, &w).unwrap();
        assert!(cost.time_ns.is_finite() && cost.time_ns >= 0.0, "{draw:?}");
        assert!(cost.mem_bytes.is_finite() && cost.mem_bytes >= 0.0);
    }
}

#[test]
fn subset_replay_against_truncated_workload_is_typed_error() {
    let w = game(5);
    let sim = Simulator::new(ArchConfig::baseline());
    let outcome = Subsetter::new(SubsetConfig::default())
        .run(&w, &sim)
        .unwrap();
    // Drop the back half of the frames: subset references must now dangle.
    let truncated = w.select_frames(&(0..2).collect::<Vec<_>>());
    assert!(matches!(
        outcome.subset.replay(&truncated, &sim),
        Err(SubsetError::SubsetMismatch { .. })
    ));
}
