//! Integration coverage of the extension surfaces: global clustering,
//! suites, merging, the power model and the deferred renderer — composed
//! the way a downstream study would use them.

use subset3d::core::{
    cluster_workload_global, predict_workload_global, subset_suite, SubsetConfig, Subsetter,
};
use subset3d::gpusim::{energy_delay_product, ArchConfig, PowerModel, Simulator};
use subset3d::prelude::*;

#[test]
fn global_clustering_composes_with_merged_suites() {
    // Merge two games, cluster the suite globally, and verify the global
    // prediction holds at frame granularity across the game boundary.
    let a = GameProfile::shooter("a")
        .frames(8)
        .draws_per_frame(60)
        .build(71)
        .generate();
    let b = GameProfile::racing("b")
        .frames(6)
        .draws_per_frame(50)
        .build(72)
        .generate();
    let suite = merge_workloads("suite", &[&a, &b]);
    let sim = Simulator::new(ArchConfig::baseline());
    let costs = sim.simulate_workload(&suite).unwrap();

    let config = SubsetConfig::default();
    let global = cluster_workload_global(&suite, &config);
    assert!(global.efficiency() > 0.4);
    let prediction = predict_workload_global(&global, &costs);
    assert!(
        prediction.mean_frame_error() < 0.15,
        "error {}",
        prediction.mean_frame_error()
    );
    // Cross-game clusters exist: the suite's redundancy is not purely
    // per-game... unless shaders are disjoint. Games have disjoint shader
    // ids after merging, but feature vectors can still coincide; just
    // assert the bookkeeping spans both games.
    let split = a.frames().len();
    let mut spans_boundary = false;
    for cluster in &global.clusters {
        let before = cluster.members.iter().any(|&(f, _)| f < split);
        let after = cluster.members.iter().any(|&(f, _)| f >= split);
        if before && after {
            spans_boundary = true;
            break;
        }
    }
    // Not guaranteed, but overwhelmingly likely for similar material
    // classes; record the outcome rather than hard-fail.
    let _ = spans_boundary;
}

#[test]
fn suite_energy_estimation_via_subsets() {
    // Estimate suite energy from per-game subsets and compare with the
    // full simulation — the E11 path exercised through the public API.
    let suite = vec![
        GameProfile::shooter("x")
            .frames(10)
            .draws_per_frame(60)
            .build(81)
            .generate(),
        GameProfile::rts("y")
            .frames(8)
            .draws_per_frame(50)
            .build(82)
            .generate(),
    ];
    let config = ArchConfig::baseline();
    let sim = Simulator::new(config.clone());
    let model = PowerModel::default_for(&config);
    let outcome =
        subset_suite(&suite, &SubsetConfig::default().with_interval_len(4), &sim).unwrap();

    let mut parent_energy = 0.0;
    let mut subset_energy = 0.0;
    for (w, (_, o)) in suite.iter().zip(&outcome.games) {
        let cost = sim.simulate_workload(w).unwrap();
        parent_energy += model.workload_energy(&cost, &config).total_nj();
        let replay = o.subset.replay_detailed(w, &sim).unwrap();
        for frame in &replay.frames {
            for (weight, draw_cost) in &frame.draws {
                subset_energy +=
                    model.draw_energy(draw_cost, &config).total_nj() * weight * frame.frame_weight;
            }
        }
    }
    let err = (subset_energy - parent_energy).abs() / parent_energy;
    assert!(
        err < 0.15,
        "suite energy estimate off by {:.1}%",
        err * 100.0
    );
    assert!(energy_delay_product(&Default::default(), 0.0) == 0.0);
}

#[test]
fn deferred_renderer_flows_through_the_whole_pipeline() {
    let w = GameProfile::shooter("deferred")
        .frames(16)
        .draws_per_frame(80)
        .deferred(true)
        .build(91)
        .generate();
    assert!(w.validate().is_empty());
    let sim = Simulator::new(ArchConfig::baseline());
    let outcome = Subsetter::new(SubsetConfig::default().with_interval_len(4))
        .run(&w, &sim)
        .unwrap();
    assert!(outcome.evaluation.mean_prediction_error() < 0.05);
    outcome.subset.validate(&w).unwrap();

    // Deferred frames are more memory-leaning than forward frames of the
    // same content.
    let fwd = GameProfile::shooter("fwd")
        .frames(16)
        .draws_per_frame(80)
        .build(91)
        .generate();
    let mem_share = |w: &Workload| {
        let cost = sim.simulate_workload(w).unwrap();
        let by_stage = cost.bottleneck_breakdown();
        by_stage.get("Memory").copied().unwrap_or(0.0) / cost.total_ns
    };
    assert!(
        mem_share(&w) > mem_share(&fwd),
        "deferred {:.2} vs forward {:.2}",
        mem_share(&w),
        mem_share(&fwd)
    );
}
