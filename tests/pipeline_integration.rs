//! End-to-end integration: trace generation → simulation → clustering →
//! phase detection → subset → validation, spanning every crate.

use subset3d::core::{
    frequency_scaling_validation, pathfinding_rank_validation, SubsetConfig, Subsetter,
};
use subset3d::gpusim::{ArchConfig, FrequencySweep, Simulator};
use subset3d::trace::gen::GameProfile;
use subset3d::trace::Workload;

fn small_game(seed: u64) -> Workload {
    GameProfile::shooter("integration")
        .frames(24)
        .draws_per_frame(150)
        .build(seed)
        .generate()
}

#[test]
fn pipeline_produces_consistent_outcome() {
    let w = small_game(100);
    let sim = Simulator::new(ArchConfig::baseline());
    let outcome = Subsetter::new(SubsetConfig::default())
        .run(&w, &sim)
        .unwrap();

    // Clusterings partition every frame.
    for (frame, clustering) in w.frames().iter().zip(&outcome.clusterings) {
        let member_total: usize = clustering.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(member_total, frame.draw_count());
    }
    // Phase bookkeeping covers every interval.
    let covered: usize = outcome
        .phases
        .phases
        .iter()
        .map(|p| p.intervals.len())
        .sum();
    assert_eq!(covered, outcome.phases.intervals.len());
    // The subset references valid structure.
    outcome.subset.validate(&w).unwrap();
    assert!(outcome.subset.draw_fraction() > 0.0);
    assert!(outcome.subset.draw_fraction() < 1.0);
}

#[test]
fn subset_tracks_parent_under_frequency_scaling() {
    let w = small_game(101);
    let sim = Simulator::new(ArchConfig::baseline());
    let outcome = Subsetter::new(SubsetConfig::default())
        .run(&w, &sim)
        .unwrap();
    let sweep = FrequencySweep::new(vec![400.0, 800.0, 1200.0]);
    let v =
        frequency_scaling_validation(&w, &outcome.subset, &ArchConfig::baseline(), &sweep).unwrap();
    assert!(v.correlation > 0.99, "r = {}", v.correlation);
    // Both series are genuine speedups (above 1 at higher clocks).
    assert!(v.parent_improvement[2] > 1.2);
    assert!(v.subset_improvement[2] > 1.2);
}

#[test]
fn subset_ranks_design_points_like_parent() {
    let w = small_game(102);
    let sim = Simulator::new(ArchConfig::baseline());
    let outcome = Subsetter::new(SubsetConfig::default())
        .run(&w, &sim)
        .unwrap();
    let candidates = vec![
        ArchConfig::small(),
        ArchConfig::baseline(),
        ArchConfig::large(),
    ];
    let (parent, estimate, agreement) =
        pathfinding_rank_validation(&w, &outcome.subset, &candidates).unwrap();
    // small must be slowest and large fastest in both views.
    assert!(parent[0] > parent[1] && parent[1] > parent[2]);
    assert!(estimate[0] > estimate[1] && estimate[1] > estimate[2]);
    assert_eq!(agreement, 1.0);
}

#[test]
fn prediction_error_is_small_and_efficiency_high() {
    let w = small_game(103);
    let sim = Simulator::new(ArchConfig::baseline());
    let outcome = Subsetter::new(SubsetConfig::default())
        .run(&w, &sim)
        .unwrap();
    let error = outcome.evaluation.mean_prediction_error();
    let efficiency = outcome.evaluation.mean_efficiency();
    let outliers = outcome.evaluation.outlier_fraction();
    assert!(error < 0.05, "error {error}");
    assert!(efficiency > 0.3, "efficiency {efficiency}");
    assert!(outliers < 0.10, "outliers {outliers}");
}

#[test]
fn whole_pipeline_is_deterministic_across_runs() {
    let sim = Simulator::new(ArchConfig::baseline());
    let a = Subsetter::new(SubsetConfig::default())
        .run(&small_game(104), &sim)
        .unwrap();
    let b = Subsetter::new(SubsetConfig::default())
        .run(&small_game(104), &sim)
        .unwrap();
    assert_eq!(a.subset, b.subset);
    assert_eq!(a.evaluation, b.evaluation);
    assert_eq!(a.phases, b.phases);
}

#[test]
fn different_genres_all_survive_the_pipeline() {
    let sim = Simulator::new(ArchConfig::baseline());
    for (name, w) in [
        (
            "shooter",
            GameProfile::shooter("g1")
                .frames(18)
                .draws_per_frame(120)
                .build(7)
                .generate(),
        ),
        (
            "rts",
            GameProfile::rts("g2")
                .frames(18)
                .draws_per_frame(120)
                .build(8)
                .generate(),
        ),
        (
            "racing",
            GameProfile::racing("g3")
                .frames(18)
                .draws_per_frame(120)
                .build(9)
                .generate(),
        ),
    ] {
        let outcome = Subsetter::new(SubsetConfig::default())
            .run(&w, &sim)
            .unwrap();
        assert!(outcome.phases.phase_count() >= 1, "{name}");
        outcome
            .subset
            .validate(&w)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
