//! Tier-1 gate: the differential oracle on the fixed-seed corpus.
//!
//! Every game profile, under every cache mode, twice (the second pass is
//! served from warm caches), must agree with the naive single-threaded
//! reference model on every bit of every cost, energy, improvement-series
//! and prediction-error field. The heavier thread-count matrix lives in
//! `subset3d-testkit`'s own `oracle_matrix` test; this one runs at the
//! ambient thread count so it stays cheap enough for tier-1.

use subset3d_gpusim::ArchConfig;
use subset3d_testkit::corpus::oracle_corpus;
use subset3d_testkit::oracle::run_oracle_all_modes;

#[test]
fn differential_oracle_reports_zero_divergence() {
    let config = ArchConfig::baseline();
    let mut draws_compared = 0;
    for (name, workload) in oracle_corpus() {
        let report = run_oracle_all_modes(name, &workload, &config)
            .unwrap_or_else(|e| panic!("oracle failed on {name}: {e}"));
        report.assert_clean();
        draws_compared += report.draws_compared;
    }
    assert!(
        draws_compared >= 3 * 1000 * 3 * 2,
        "corpus shrank below the intended coverage: {draws_compared} draw comparisons"
    );
}
