//! Regression guard: the paper's headline metrics on a scaled-down corpus.
//!
//! The full 828K-draw corpus runs in the release-mode experiment binaries;
//! this test pins the same metrics on a miniature corpus with generous
//! bands, so calibration regressions are caught by `cargo test`.

use subset3d::core::{
    frequency_scaling_validation, subset_suite, validate_suite_scaling, SubsetConfig,
};
use subset3d::gpusim::{ArchConfig, FrequencySweep, Simulator};
use subset3d::trace::gen::GameProfile;
use subset3d::trace::Workload;

fn mini_corpus() -> Vec<Workload> {
    vec![
        GameProfile::shooter("mini-shock")
            .frames(24)
            .draws_per_frame(200)
            .build(1)
            .generate(),
        GameProfile::rts("mini-strat")
            .frames(20)
            .draws_per_frame(180)
            .build(2)
            .generate(),
        GameProfile::racing("mini-speed")
            .frames(20)
            .draws_per_frame(160)
            .build(3)
            .generate(),
    ]
}

#[test]
fn headline_metrics_hold_on_mini_corpus() {
    let corpus = mini_corpus();
    let sim = Simulator::new(ArchConfig::baseline());
    let config = SubsetConfig::default().with_interval_len(5);
    let outcome = subset_suite(&corpus, &config, &sim).unwrap();

    // Clustering quality: error well under 5%, efficiency meaningful,
    // outliers rare. (Bands are loose: small frames cluster less
    // efficiently than the 1400-draw corpus frames.)
    let error = outcome.mean_prediction_error();
    let efficiency = outcome.mean_efficiency();
    let outliers = outcome.mean_outlier_fraction();
    assert!(error < 0.05, "prediction error {error}");
    assert!(efficiency > 0.25, "efficiency {efficiency}");
    assert!(outliers < 0.10, "outliers {outliers}");

    // Subsets are small.
    let fraction = outcome.suite_draw_fraction(&corpus);
    assert!(fraction < 0.10, "suite subset fraction {fraction}");

    // And they track frequency scaling at suite level.
    let sweep = FrequencySweep::new(vec![400.0, 600.0, 800.0, 1000.0, 1200.0]);
    let (_, _, r) =
        validate_suite_scaling(&corpus, &outcome, &ArchConfig::baseline(), &sweep).unwrap();
    assert!(r > 0.997, "suite scaling correlation {r}");
}

#[test]
fn every_mini_game_validates_individually() {
    let corpus = mini_corpus();
    let sim = Simulator::new(ArchConfig::baseline());
    let config = SubsetConfig::default().with_interval_len(5);
    let outcome = subset_suite(&corpus, &config, &sim).unwrap();
    let sweep = FrequencySweep::new(vec![400.0, 800.0, 1200.0]);
    for (w, (name, o)) in corpus.iter().zip(&outcome.games) {
        let v =
            frequency_scaling_validation(w, &o.subset, &ArchConfig::baseline(), &sweep).unwrap();
        assert!(v.correlation > 0.99, "{name}: r = {}", v.correlation);
        assert!(o.subset.draw_fraction() < 0.15, "{name}: subset too large");
        assert!(o.phases.phase_count() >= 1, "{name}: no phases");
    }
}
