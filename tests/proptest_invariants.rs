//! Property-based invariants across the workspace, via proptest.

use proptest::prelude::*;
use subset3d::cluster::{medoid_of, KMeans, ThresholdClustering};
use subset3d::core::{cluster_frame, predict_frame, ShaderVector, SubsetConfig};
use subset3d::features::{euclidean, manhattan};
use subset3d::gpusim::{ArchConfig, Simulator};
use subset3d::stats::{pearson, percentile, Histogram};
use subset3d::trace::gen::GameProfile;
use subset3d::trace::{
    BlendMode, CullMode, DepthMode, DrawCall, DrawColumns, DrawId, PrimitiveTopology,
    RenderTargetDesc, ShaderId, StateId, TextureFormat, TextureId,
};

/// Strategy: a small dataset of low-dimensional points.
fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 1..60)
}

/// Strategy: one fully arbitrary draw-call, covering every column of the
/// SoA layout including NaN-free float extremes and empty/wide texture
/// binding lists.
fn draw_strategy() -> impl Strategy<Value = DrawCall> {
    let topology = (0u8..4).prop_map(|i| match i {
        0 => PrimitiveTopology::TriangleList,
        1 => PrimitiveTopology::TriangleStrip,
        2 => PrimitiveTopology::LineList,
        _ => PrimitiveTopology::PointList,
    });
    let blend = (0u8..3).prop_map(|i| match i {
        0 => BlendMode::Opaque,
        1 => BlendMode::AlphaBlend,
        _ => BlendMode::Additive,
    });
    let depth = (0u8..3).prop_map(|i| match i {
        0 => DepthMode::TestAndWrite,
        1 => DepthMode::TestOnly,
        _ => DepthMode::Disabled,
    });
    let cull = (0u8..3).prop_map(|i| match i {
        0 => CullMode::None,
        1 => CullMode::Back,
        _ => CullMode::Front,
    });
    let format = (0u8..3).prop_map(|i| match i {
        0 => TextureFormat::Rgba8,
        1 => TextureFormat::Bc1,
        _ => TextureFormat::Rgba16f,
    });
    let target = (1u32..8192, 1u32..8192, format, 1u32..=8, 1u32..=4).prop_map(
        |(width, height, format, samples, color_attachments)| RenderTargetDesc {
            width,
            height,
            format,
            samples,
            color_attachments,
        },
    );
    (
        (
            any::<u64>(),
            any::<u32>(),
            0u32..64,
            0u32..64,
            blend,
            depth,
            cull,
            topology,
        ),
        (
            0u64..10_000_000,
            1u32..=65_535,
            prop::collection::vec(0u32..256, 0..12),
            target,
            0.0f64..=1.0,
            1.0f64..=50.0,
            0.0f64..=1.0,
            0.0f64..=1.0,
            any::<u32>(),
        ),
    )
        .prop_map(
            |(
                (id, state, vs, ps, blend, depth, cull, topology),
                (
                    vertex_count,
                    instance_count,
                    textures,
                    render_target,
                    coverage,
                    overdraw,
                    z_pass_rate,
                    texel_locality,
                    material_tag,
                ),
            )| DrawCall {
                id: DrawId(id),
                state: StateId(state),
                vertex_shader: ShaderId(vs),
                pixel_shader: ShaderId(ps),
                blend,
                depth,
                cull,
                topology,
                vertex_count,
                instance_count,
                textures: textures.into_iter().map(TextureId).collect(),
                render_target,
                coverage,
                overdraw,
                z_pass_rate,
                texel_locality,
                material_tag,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn threshold_clustering_is_a_partition(points in points_strategy(), t in 0.0f64..50.0) {
        let c = ThresholdClustering::new(t).fit(&points);
        prop_assert_eq!(c.point_count(), points.len());
        let mut seen = vec![false; points.len()];
        for members in c.members() {
            for m in members {
                prop_assert!(!seen[m]);
                seen[m] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // Every member is within the threshold of its leader centroid.
        for (i, &a) in c.assignments().iter().enumerate() {
            let d = euclidean(&points[i], &c.centroids()[a]);
            prop_assert!(d <= t + 1e-9);
        }
    }

    #[test]
    fn kmeans_inertia_never_worse_than_single_cluster(points in points_strategy()) {
        let k1 = KMeans::new(1).fit(&points).inertia(&points);
        let k3 = KMeans::new(3).seed(1).fit(&points).inertia(&points);
        prop_assert!(k3 <= k1 + 1e-6);
    }

    #[test]
    fn medoid_is_member_and_stable(points in points_strategy()) {
        let members: Vec<usize> = (0..points.len()).collect();
        let m = medoid_of(&points, &members);
        prop_assert!(m.is_some());
        prop_assert!(members.contains(&m.unwrap()));
        prop_assert_eq!(m, medoid_of(&points, &members));
    }

    #[test]
    fn distances_satisfy_metric_axioms(
        a in prop::collection::vec(-50.0f64..50.0, 4),
        b in prop::collection::vec(-50.0f64..50.0, 4),
        c in prop::collection::vec(-50.0f64..50.0, 4),
    ) {
        for d in [euclidean, manhattan] {
            prop_assert!(d(&a, &b) >= 0.0);
            prop_assert!((d(&a, &b) - d(&b, &a)).abs() < 1e-9);
            prop_assert!(d(&a, &a) < 1e-12);
            prop_assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-9);
        }
    }

    #[test]
    fn percentile_is_bounded_by_extremes(
        values in prop::collection::vec(-1e6f64..1e6, 1..100),
        p in 0.0f64..100.0,
    ) {
        let v = percentile(&values, p).unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn histogram_conserves_samples(
        values in prop::collection::vec(-10.0f64..10.0, 0..200),
        bins in 1usize..20,
    ) {
        let mut h = Histogram::new(-5.0, 5.0, bins);
        h.extend(values.iter().copied());
        prop_assert_eq!(h.total(), values.len());
        let sum: usize = h.bins().iter().map(|b| b.count).sum();
        prop_assert_eq!(sum, values.len());
    }

    #[test]
    fn pearson_is_scale_invariant(
        xs in prop::collection::vec(-100.0f64..100.0, 3..30),
        scale in 0.1f64..10.0,
        offset in -100.0f64..100.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|&x| x * scale + offset).collect();
        // Perfectly linear relation with positive slope: r == 1.
        if let Ok(r) = pearson(&xs, &ys) {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {r}");
        }
    }

    #[test]
    fn columnar_layout_round_trips_losslessly(
        draws in prop::collection::vec(draw_strategy(), 0..40),
    ) {
        // SoA ↔ AoS must be bijective: scattering arbitrary draws into
        // columns and gathering them back reproduces every field bit for
        // bit, in order.
        let cols = DrawColumns::from_draws(draws.iter().cloned());
        prop_assert_eq!(cols.len(), draws.len());
        prop_assert_eq!(cols.to_draws(), draws.clone());
        // Random access agrees with the bulk gather.
        for (i, draw) in draws.iter().enumerate() {
            prop_assert_eq!(&cols.get(i).unwrap(), draw);
        }
        // And a second scatter from the gathered draws is identical —
        // the mapping is stable, not merely invertible once.
        let again = DrawColumns::from_draws(cols.to_draws());
        prop_assert_eq!(again.to_draws(), draws);
    }

    #[test]
    fn shader_vector_jaccard_bounds(
        a in prop::collection::btree_set(0u32..40, 0..20),
        b in prop::collection::btree_set(0u32..40, 0..20),
    ) {
        let va: ShaderVector = a.iter().map(|&i| ShaderId(i)).collect();
        let vb: ShaderVector = b.iter().map(|&i| ShaderId(i)).collect();
        let j = va.jaccard(&vb);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((va.jaccard(&vb) - vb.jaccard(&va)).abs() < 1e-12);
        prop_assert_eq!(va.jaccard(&va), 1.0);
        if a == b {
            prop_assert_eq!(j, 1.0);
        }
    }
}

proptest! {
    // Workload-level properties are heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pipeline_invariants_hold_for_random_profiles(
        seed in 0u64..1000,
        frames in 4usize..12,
        draws in 20usize..80,
    ) {
        let w = GameProfile::shooter("prop")
            .frames(frames)
            .draws_per_frame(draws)
            .build(seed)
            .generate();
        prop_assert!(w.validate().is_empty());
        let sim = Simulator::new(ArchConfig::baseline());
        let config = SubsetConfig::default();
        for frame in w.frames() {
            let clustering = cluster_frame(frame, &w, &config);
            prop_assert!(clustering.cluster_count() >= 1);
            prop_assert!(clustering.cluster_count() <= frame.draw_count());
            let cost = sim.simulate_frame(frame, &w).unwrap();
            let prediction = predict_frame(&clustering, &cost);
            // Prediction is positive and bounded: the representative of a
            // cluster can be at most `n×` cheaper/dearer than the truth.
            prop_assert!(prediction.predicted_ns > 0.0);
            prop_assert!(prediction.error().is_finite());
        }
    }
}
