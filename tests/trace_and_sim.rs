//! Integration between the trace model and both simulators.

use subset3d::gpusim::event::PipelineSim;
use subset3d::gpusim::{sweep_configs, sweep_frequencies, ArchConfig, FrequencySweep, Simulator};
use subset3d::trace::gen::GameProfile;
use subset3d::trace::{decode_workload, encode_workload};

#[test]
fn serde_json_roundtrip_of_workload() {
    let w = GameProfile::rts("json")
        .frames(4)
        .draws_per_frame(30)
        .build(5)
        .generate();
    let json = serde_json::to_string(&w).unwrap();
    let back: subset3d::trace::Workload = serde_json::from_str(&json).unwrap();
    // The state-table dedup index is skipped in serde; equality of the
    // observable content still holds.
    assert_eq!(w.frames(), back.frames());
    assert_eq!(w.total_draws(), back.total_draws());
    assert_eq!(w.name, back.name);
}

#[test]
fn binary_and_json_agree() {
    let w = GameProfile::racing("bin")
        .frames(4)
        .draws_per_frame(40)
        .build(6)
        .generate();
    let decoded = decode_workload(&encode_workload(&w)).unwrap();
    assert_eq!(w, decoded);
    let cost_a = Simulator::new(ArchConfig::baseline())
        .simulate_workload(&w)
        .unwrap();
    let cost_b = Simulator::new(ArchConfig::baseline())
        .simulate_workload(&decoded)
        .unwrap();
    assert_eq!(cost_a, cost_b);
}

#[test]
fn frequency_sweep_monotone_for_all_genres() {
    for w in [
        GameProfile::shooter("a")
            .frames(6)
            .draws_per_frame(60)
            .build(1)
            .generate(),
        GameProfile::rts("b")
            .frames(6)
            .draws_per_frame(60)
            .build(2)
            .generate(),
        GameProfile::racing("c")
            .frames(6)
            .draws_per_frame(60)
            .build(3)
            .generate(),
    ] {
        let points =
            sweep_frequencies(&w, &ArchConfig::baseline(), &FrequencySweep::standard()).unwrap();
        assert!(
            points.windows(2).all(|p| p[1].total_ns <= p[0].total_ns),
            "{}: sweep not monotone",
            w.name
        );
    }
}

#[test]
fn candidate_ordering_is_sane() {
    // `large` strictly dominates `baseline`, which dominates `small`,
    // whatever the content.
    let w = GameProfile::shooter("order")
        .frames(8)
        .draws_per_frame(100)
        .build(11)
        .generate();
    let times = sweep_configs(
        &w,
        &[
            ArchConfig::small(),
            ArchConfig::baseline(),
            ArchConfig::large(),
        ],
    )
    .unwrap();
    assert!(times[0].total_ns > times[1].total_ns);
    assert!(times[1].total_ns > times[2].total_ns);
}

#[test]
fn pipelined_model_agrees_with_analytic_across_frames() {
    let w = GameProfile::shooter("agree")
        .frames(10)
        .draws_per_frame(120)
        .build(12)
        .generate();
    let analytic = Simulator::new(ArchConfig::baseline());
    let pipelined = PipelineSim::new(ArchConfig::baseline());
    let a: Vec<f64> = w
        .frames()
        .iter()
        .map(|f| analytic.simulate_frame(f, &w).unwrap().total_ns)
        .collect();
    let p: Vec<f64> = w
        .frames()
        .iter()
        .map(|f| pipelined.simulate_frame(f, &w).unwrap().total_ns)
        .collect();
    let r = subset3d::stats::pearson(&a, &p).unwrap();
    assert!(r > 0.95, "model agreement r = {r}");
    // The pipelined model exploits overlap: never meaningfully slower.
    for (x, y) in a.iter().zip(&p) {
        assert!(y <= &(x * 1.02 + 1000.0), "pipelined {y} vs analytic {x}");
    }
}

#[test]
fn merging_never_changes_simulated_behaviour() {
    // Per-frame costs of a merged suite equal the concatenation of the
    // inputs' per-frame costs: merging is packaging, not behaviour.
    use subset3d::trace::merge_workloads;
    let a = GameProfile::shooter("a")
        .frames(4)
        .draws_per_frame(40)
        .build(31)
        .generate();
    let b = GameProfile::rts("b")
        .frames(3)
        .draws_per_frame(35)
        .build(32)
        .generate();
    let suite = merge_workloads("suite", &[&a, &b]);
    let sim = Simulator::new(ArchConfig::baseline());
    let suite_cost = sim.simulate_workload(&suite).unwrap();
    let a_cost = sim.simulate_workload(&a).unwrap();
    let b_cost = sim.simulate_workload(&b).unwrap();
    let expected: Vec<f64> = a_cost
        .frame_times()
        .into_iter()
        .chain(b_cost.frame_times())
        .collect();
    for (i, (&e, got)) in expected.iter().zip(suite_cost.frame_times()).enumerate() {
        assert!(
            (e - got).abs() / e < 1e-12,
            "frame {i}: merged {got} vs separate {e}"
        );
    }
}

#[test]
fn generated_traces_are_always_valid() {
    for seed in 0..5 {
        let w = GameProfile::shooter("valid")
            .frames(6)
            .draws_per_frame(50)
            .build(seed)
            .generate();
        assert!(w.validate().is_empty(), "seed {seed}");
    }
}
