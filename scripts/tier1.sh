#!/usr/bin/env sh
# Tier-1 gate (see ROADMAP.md): formatting and lint gates, release build +
# test suite, then the pipeline throughput report (writes
# BENCH_pipeline.json at repo root).
set -eu

cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings

cargo build --release
cargo test -q

cargo run -p subset3d-bench --bin bench_report --release
