#!/usr/bin/env sh
# Tier-1 gate (see ROADMAP.md): formatting and lint gates, release build +
# test suite, the correctness harness (differential oracle, mutation
# catch, golden snapshots), a trace-subsystem smoke test, then the
# pipeline throughput report (writes BENCH_pipeline.json at repo root).
set -eu

cd "$(dirname "$0")/.."

cargo fmt --check
# --all-targets lints tests, benches and examples too, not just lib code.
cargo clippy --workspace --all-targets -- -D warnings

cargo build --release
cargo test -q

# Correctness harness: the fault-injection feature compiles the memo-cache
# mutation hook so mutation_caught can prove the oracle detects a seeded
# one-ulp corruption; the oracle matrix and golden-snapshot gates run in
# the same pass.
cargo test -p subset3d-testkit --features fault-injection -q

# Trace smoke: profile a small shooter workload under the event tracer,
# then re-validate the emitted file with the exporter's own schema check
# (laminar span nesting, flow pairing, required fields).
TRACE_TMP="$(mktemp -d)"
NET_PID=""
trap '[ -n "$NET_PID" ] && kill "$NET_PID" 2>/dev/null; rm -rf "$TRACE_TMP"' EXIT
cargo run -p subset3d-cli --release -q -- gen --out "$TRACE_TMP/smoke.trace" \
    --genre shooter --frames 24 --draws 60 --seed 7
cargo run -p subset3d-cli --release -q -- trace-profile "$TRACE_TMP/smoke.trace" \
    --trace-out "$TRACE_TMP/smoke.trace.json"
cargo run -p subset3d-cli --release -q -- trace-validate "$TRACE_TMP/smoke.trace.json"

# Backend smoke: run the subsetting pipeline once per clustering backend
# on the same small workload, each under the tracer, and re-validate
# every emitted trace. Catches a backend that panics, hangs or emits a
# malformed timeline before the full bake-off would.
for backend in threshold kmeans stratified pca-agglo; do
    cargo run -p subset3d-cli --release -q -- subset "$TRACE_TMP/smoke.trace" \
        --backend "$backend" --trace-out "$TRACE_TMP/smoke.$backend.json"
    cargo run -p subset3d-cli --release -q -- trace-validate \
        "$TRACE_TMP/smoke.$backend.json"
done

# Serve smoke: replay the same recorded trace through the streaming
# service (two concurrent sessions, small chunks) under the tracer,
# re-validate the emitted timeline, then run the streaming-vs-batch
# differential oracle that proves session drain converges to the batch
# fit across chunk sizes and thread counts.
cargo run -p subset3d-cli --release -q -- serve --replay "$TRACE_TMP/smoke.trace" \
    --chunk 5 --sessions 2 --trace-out "$TRACE_TMP/smoke.serve.json"
cargo run -p subset3d-cli --release -q -- trace-validate "$TRACE_TMP/smoke.serve.json"
cargo test -p subset3d-testkit --release -q --test streaming_oracle

# Telemetry smoke: the same replay with time-series sampling on
# (interval zero cuts a window every chunk round), exporting both a
# Prometheus snapshot and the JSONL window series, then lint both
# artifacts with the exporters' own schema checks. The generous SLO
# budget keeps the watchdog engaged without tripping on a loaded CI box.
cargo run -p subset3d-cli --release -q -- serve --replay "$TRACE_TMP/smoke.trace" \
    --chunk 5 --sessions 2 --telemetry-interval 0 --slo-budget 1s \
    --prom-out "$TRACE_TMP/smoke.prom" \
    --timeseries-out "$TRACE_TMP/smoke.tsdb.jsonl"
cargo run -p subset3d-cli --release -q -- telemetry-validate "$TRACE_TMP/smoke.prom"
cargo run -p subset3d-cli --release -q -- telemetry-validate "$TRACE_TMP/smoke.tsdb.jsonl"

# Net smoke: background listener on a loopback port (port 0; the first
# line it prints is the resolved address), then a two-session replay
# client over TCP. The connect mode runs the same replay in-process and
# exits non-zero on the first wire update that diverges from the local
# one, so the client's exit code *is* the differential assertion. Its
# reference replay also exports telemetry artifacts, re-validated below.
cargo run -p subset3d-cli --release -q -- serve --listen 127.0.0.1:0 \
    --session-ttl 60s > "$TRACE_TMP/smoke.listen.out" &
NET_PID=$!
NET_ADDR=""
for _ in $(seq 1 100); do
    NET_ADDR="$(sed -n 's/^listening on //p' "$TRACE_TMP/smoke.listen.out")"
    [ -n "$NET_ADDR" ] && break
    sleep 0.1
done
[ -n "$NET_ADDR" ] || { echo "tier1: net listener never came up" >&2; exit 1; }
cargo run -p subset3d-cli --release -q -- serve --connect "$NET_ADDR" \
    --replay "$TRACE_TMP/smoke.trace" --chunk 5 --sessions 2 \
    --telemetry-interval 0 \
    --prom-out "$TRACE_TMP/smoke.net.prom" \
    --timeseries-out "$TRACE_TMP/smoke.net.tsdb.jsonl"
cargo run -p subset3d-cli --release -q -- telemetry-validate "$TRACE_TMP/smoke.net.prom"
cargo run -p subset3d-cli --release -q -- telemetry-validate "$TRACE_TMP/smoke.net.tsdb.jsonl"
kill "$NET_PID"
wait "$NET_PID" 2>/dev/null || true
NET_PID=""

# Perf guard, report-only: compare the committed benchmark report against
# a fresh median-of-3 measurement. Machine variance makes a hard gate
# flaky in CI, so --check prints regressions without failing the build;
# run bench_diff without --check locally when a perf change is on trial.
cargo run -p subset3d-bench --bin bench_diff --release -- --check BENCH_pipeline.json

# Metrics-overhead regression step: refresh BENCH_pipeline.json, then
# diff the observability overheads (parallel-pass metrics/trace cost,
# plus serve-replay telemetry sampling) against the previously committed
# report, with a 2 pp drift threshold and a 2 % absolute budget on the
# candidate — the sharded-counter design target. Report-only for the
# same machine-variance reason.
cp BENCH_pipeline.json "$TRACE_TMP/committed_bench.json"
cargo run -p subset3d-bench --bin bench_report --release
cargo run -p subset3d-bench --bin bench_diff --release -- \
    --check --threshold 2 --metric overhead --max-overhead 2 \
    "$TRACE_TMP/committed_bench.json" BENCH_pipeline.json

# Speedup floors, hard gates: memoization must actually win. The
# iterated sweep is the scenario whose speedup the memo design owns
# (warm passes served wholesale from the batch caches; ~2x even on one
# core), so it carries an absolute floor that fails the build even under
# --check. The cold workload_sim pass carries the same 1.0 floor:
# since the adaptive policy stopped computing batch digests while the
# draw cache is disabled (a single-pass stream's steady state), the
# parallel+memoized path must at least match single-thread-uncached
# rather than paying probe overhead for nothing. The remaining cold
# scenario (subsetting_pipeline) stays report-only above.
cargo run -p subset3d-bench --bin bench_diff --release -- \
    --check --metric iterated_sweep.speedup --min-speedup 1.0 \
    "$TRACE_TMP/committed_bench.json" BENCH_pipeline.json
cargo run -p subset3d-bench --bin bench_diff --release -- \
    --check --metric workload_sim.speedup --min-speedup 1.0 \
    "$TRACE_TMP/committed_bench.json" BENCH_pipeline.json
