#!/usr/bin/env sh
# Tier-1 gate (see ROADMAP.md): formatting and lint gates, release build +
# test suite, the correctness harness (differential oracle, mutation
# catch, golden snapshots), then the pipeline throughput report (writes
# BENCH_pipeline.json at repo root).
set -eu

cd "$(dirname "$0")/.."

cargo fmt --check
# --all-targets lints tests, benches and examples too, not just lib code.
cargo clippy --workspace --all-targets -- -D warnings

cargo build --release
cargo test -q

# Correctness harness: the fault-injection feature compiles the memo-cache
# mutation hook so mutation_caught can prove the oracle detects a seeded
# one-ulp corruption; the oracle matrix and golden-snapshot gates run in
# the same pass.
cargo test -p subset3d-testkit --features fault-injection -q

cargo run -p subset3d-bench --bin bench_report --release
