//! Offline vendored stand-in for `rand` 0.8.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim keeps the `rand` API surface the workspace uses
//! (`Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`) with a deterministic xoshiro256++ generator seeded via
//! SplitMix64. Sequences differ from upstream `rand`, which is fine: all
//! in-repo consumers treat the generator as an opaque deterministic
//! source and test properties, not golden values.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types producible by [`Rng::gen`] from the "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range (or inclusive range) values of `T` can be drawn uniformly
/// from. Generic over the element type (rather than via an associated
/// type) so integer literals in ranges infer from the call site, as
/// with the real crate.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling helpers, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (not the upstream ChaCha12; see crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding recipe.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Convenience prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(1u8..=255);
            assert!(i >= 1);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits={hits}");
    }
}
