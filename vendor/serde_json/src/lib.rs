//! Offline vendored stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` [`Value`] tree as JSON text.
//! Floats print via Rust's shortest-roundtrip `Display`, so every finite
//! `f64` survives `to_string` → `from_str` bit-exactly (the behaviour the
//! real crate's `float_roundtrip` feature guarantees). Non-finite floats
//! render as `null`, matching the real crate.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
pub type Error = serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the value model used here; the `Result` exists for
/// call-site compatibility with the real crate.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the value model used here.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// Infallible for the value model used here.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Parses a value from JSON bytes.
///
/// # Errors
///
/// Returns an [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8 in JSON input"))?;
    from_str(text)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display is shortest-roundtrip; force a ".0" onto integral
    // floats so the value reads back as a float-typed token, matching
    // the real crate.
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] on malformed input or trailing garbage.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' | b'f' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!("bad literal at byte {}", self.pos)))
                }
            }
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!("bad literal at byte {}", self.pos)))
                }
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("lone surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| Error::custom("bad low surrogate"))?);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("bad number at byte {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

fn utf8_len(first: u8) -> Result<usize> {
    match first {
        0x00..=0x7F => Ok(1),
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(Error::custom("invalid UTF-8 in string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), r#""a\"b""#);
        assert_eq!(from_str::<String>(r#""a\"b""#).unwrap(), "a\"b");
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for f in [0.1f64, 1.5, -2.75e-8, 1e300, 0.30000000000000004, 3.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {s}");
        }
    }

    #[test]
    fn integral_float_keeps_float_form() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Value::Object(vec![
            (
                "xs".into(),
                Value::Array(vec![Value::Int(1), Value::Int(-2)]),
            ),
            ("name".into(), Value::Str("trace".into())),
            ("flag".into(), Value::Bool(false)),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert_eq!(from_str::<String>("\"héllo\"").unwrap(), "héllo");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4 4").is_err());
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }
}
