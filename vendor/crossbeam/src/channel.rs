//! MPMC channels with the `crossbeam-channel` API surface used here.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

#[derive(Debug)]
struct Shared<T> {
    queue: Mutex<ChannelState<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct ChannelState<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, ChannelState<T>> {
    shared.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(ChannelState {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel.
#[derive(Debug)]
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        lock(&self.shared).senders -= 1;
        self.shared.ready.notify_all();
    }
}

impl<T> Sender<T> {
    /// Sends a message, failing only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = lock(&self.shared);
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.items.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

/// The receiving half of a channel.
#[derive(Debug)]
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        lock(&self.shared).receivers -= 1;
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = lock(&self.shared);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = lock(&self.shared);
        if let Some(item) = state.items.pop_front() {
            return Ok(item);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking iterator over incoming messages; ends at disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_across_threads() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().take(100).collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }
}
