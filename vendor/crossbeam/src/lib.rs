//! Offline vendored stand-in for `crossbeam`.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim provides the API surface the workspace uses with
//! the same semantics, built on `std::sync` primitives: the lock-free
//! guts are replaced by short critical sections, which is correct (if
//! slower under extreme contention) and keeps call sites source-
//! compatible with the real crate.

pub mod channel;
pub mod deque;

mod scope_impl;
pub use scope_impl::{scope, Scope, ScopedJoinHandle};
