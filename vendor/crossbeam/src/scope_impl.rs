//! `crossbeam::scope` compatibility layer over `std::thread::scope`.

use std::any::Any;

/// A scope in which borrowed-data threads can be spawned.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle of a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope, mirroring
    /// the `crossbeam` signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a thread scope; like `crossbeam::scope`, child panics
/// surface as an `Err` after all children have been joined (std's scope
/// re-raises an unjoined child panic, which is caught here).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_all_children() {
        let data = vec![1, 2, 3];
        let sum = std::sync::atomic::AtomicUsize::new(0);
        let sum_ref = &sum;
        scope(|s| {
            for &x in &data {
                s.spawn(move |_| {
                    sum_ref.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 6);
    }

    #[test]
    fn child_panic_is_reported() {
        let r = scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }
}
