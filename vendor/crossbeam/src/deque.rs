//! Work-stealing deques: `Worker`, `Stealer`, and `Injector`.
//!
//! Same API and stealing semantics as `crossbeam-deque`, implemented
//! with `Mutex<VecDeque>` instead of the Chase-Lev algorithm.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race; the caller may retry.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

fn lock<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The owner side of a work-stealing deque.
#[derive(Debug)]
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
    fifo: bool,
}

impl<T> Worker<T> {
    /// Creates a FIFO deque (owner pops from the front).
    pub fn new_fifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            fifo: true,
        }
    }

    /// Creates a LIFO deque (owner pops from the back).
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            fifo: false,
        }
    }

    /// Pushes a task onto the owner end.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Pops a task from the owner end.
    pub fn pop(&self) -> Option<T> {
        let mut q = lock(&self.queue);
        if self.fifo {
            q.pop_front()
        } else {
            q.pop_back()
        }
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }

    /// Creates a stealer handle for other threads.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// The thief side of a work-stealing deque; always steals from the front.
#[derive(Debug)]
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal one task.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

/// A shared FIFO injector queue all workers can push to and steal from.
#[derive(Debug, Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task onto the back.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Attempts to steal one task from the front.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the injector is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_pop_order() {
        let fifo = Worker::new_fifo();
        fifo.push(1);
        fifo.push(2);
        assert_eq!(fifo.pop(), Some(1));
        let lifo = Worker::new_lifo();
        lifo.push(1);
        lifo.push(2);
        assert_eq!(lifo.pop(), Some(2));
    }

    #[test]
    fn stealers_take_from_front() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push('a');
        inj.push('b');
        assert_eq!(inj.steal().success(), Some('a'));
        assert_eq!(inj.steal().success(), Some('b'));
        assert!(inj.steal().is_empty());
    }
}
