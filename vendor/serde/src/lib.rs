//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim keeps call sites source-compatible — `use
//! serde::{Serialize, Deserialize}` plus `#[derive(Serialize,
//! Deserialize)]` — but replaces serde's visitor architecture with a
//! simple self-describing [`Value`] tree: serialization lowers to a
//! `Value`, deserialization lifts from one. `serde_json` (also vendored)
//! renders and parses that tree. Object key order is preserved, so
//! serialized field order matches declaration order exactly as with real
//! serde.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (declaration order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A one-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Creates a type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error {
            message: format!("expected {what}, found {}", got.kind()),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serialized value tree.
    fn to_value(&self) -> Value;
}

/// Types that can lift themselves out of a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs a value from the serialized tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree does not match the expected
    /// shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range"))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range"))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // Real serde_json emits null for non-finite floats; accept it
            // back as NaN so such trees still roundtrip structurally.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Leaks: only reachable when a type stores `&'static str`
            // (diagnostic labels); real serde borrows from the input,
            // which this owned value tree cannot do.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---- composite impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let mut it = items.iter();
                let out = ($(
                    {
                        let _ = $idx;
                        $name::from_value(
                            it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                        )?
                    },
                )+);
                Ok(out)
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map keys must render to / parse from strings in the JSON data model.
pub trait MapKey: Sized {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the string is not a valid key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_mapkey_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom(format!("bad integer key {key:?}")))
            }
        }
    )*};
}
impl_mapkey_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        // Sorted by rendered value so output is deterministic.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support code for the derive macros; not part of the public API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Fetches and deserializes a named struct field.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the field is absent or malformed.
    pub fn de_field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, Error> {
        match fields.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => Err(Error::custom(format!("missing field `{name}`"))),
        }
    }

    /// Fetches an optional field: absent keys become `None`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when a present field is malformed.
    pub fn de_field_opt<T: Deserialize>(
        fields: &[(String, Value)],
        name: &str,
    ) -> Result<Option<T>, Error> {
        match fields.iter().find(|(k, _)| k == name) {
            Some((_, Value::Null)) | None => Ok(None),
            Some((_, v)) => T::from_value(v)
                .map(Some)
                .map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        }
    }

    /// Fetches a `#[serde(default)]` field: absent keys take the type's
    /// default value instead of erroring.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the field is present but malformed.
    pub fn de_field_default<T: Deserialize + Default>(
        fields: &[(String, Value)],
        name: &str,
    ) -> Result<T, Error> {
        match fields.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => Ok(T::default()),
        }
    }

    /// Key lookup honouring a `#[serde(alias = "...")]` fallback name;
    /// the primary name wins when both keys are present.
    fn find_aliased<'a>(
        fields: &'a [(String, Value)],
        name: &str,
        alias: &str,
    ) -> Option<&'a Value> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .or_else(|| fields.iter().find(|(k, _)| k == alias))
            .map(|(_, v)| v)
    }

    /// [`de_field`] with an alias fallback name.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when both keys are absent or the value is
    /// malformed.
    pub fn de_field_alias<T: Deserialize>(
        fields: &[(String, Value)],
        name: &str,
        alias: &str,
    ) -> Result<T, Error> {
        match find_aliased(fields, name, alias) {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
            None => Err(Error::custom(format!("missing field `{name}`"))),
        }
    }

    /// [`de_field_opt`] with an alias fallback name.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when a present value is malformed.
    pub fn de_field_opt_alias<T: Deserialize>(
        fields: &[(String, Value)],
        name: &str,
        alias: &str,
    ) -> Result<Option<T>, Error> {
        match find_aliased(fields, name, alias) {
            Some(Value::Null) | None => Ok(None),
            Some(v) => T::from_value(v)
                .map(Some)
                .map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        }
    }

    /// [`de_field_default`] with an alias fallback name.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when a present value is malformed.
    pub fn de_field_default_alias<T: Deserialize + Default>(
        fields: &[(String, Value)],
        name: &str,
        alias: &str,
    ) -> Result<T, Error> {
        match find_aliased(fields, name, alias) {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
            None => Ok(T::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn u64_above_i64_range_survives() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn option_and_vec_roundtrip() {
        let v: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&v.to_value()).unwrap(), None);
        let xs = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn map_keys_render_as_strings() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        let val = m.to_value();
        assert_eq!(val.get("3").and_then(Value::as_str), Some("x"));
        assert_eq!(BTreeMap::<u32, String>::from_value(&val).unwrap(), m);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u32::from_value(&Value::Str("no".into())).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
    }
}
