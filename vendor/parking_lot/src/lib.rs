//! Offline vendored stand-in for `parking_lot`.
//!
//! The build environment has no network access and no cargo registry
//! cache, so the real crate cannot be fetched. This shim exposes the
//! subset of the `parking_lot` API this workspace uses — `Mutex`,
//! `RwLock`, and `Condvar` without lock poisoning — implemented on the
//! `std::sync` primitives. Semantics match `parking_lot`: a panic while a
//! lock is held never poisons it for other threads.

use std::sync::PoisonError;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring `guard`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free guard juggling: std's API consumes and returns the
        // guard, parking_lot's mutates in place; bridge by move-in/move-out.
        replace_with(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_with(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Replaces `*slot` through a consuming closure; aborts on panic inside
/// `f` (the closure only calls std lock methods that do not panic).
fn replace_with<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // A None in the slot is never observable: `f` runs to completion or
    // aborts the process.
    struct Abort;
    impl Drop for Abort {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let guard = std::ptr::read(slot);
        let abort = Abort;
        let new = f(guard);
        std::mem::forget(abort);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_is_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
