//! Offline vendored stand-in for `criterion`.
//!
//! Keeps the call-site API of the real crate (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros) but measures with a
//! short fixed iteration budget and prints one line per benchmark.
//! Bench targets here use `harness = false`, so `cargo test` executes
//! them directly — the tiny budget keeps that fast.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget. Enough for a stable median on the
/// fast benches without making `cargo test` crawl on the slow ones.
const TIME_BUDGET: Duration = Duration::from_millis(40);
const MAX_ITERS: u32 = 25;

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for compatibility; the iteration budget here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; warm-up is a single untimed run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the budget here is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut bencher = Bencher {
            best_ns: f64::INFINITY,
        };
        f(&mut bencher);
        report(&label, bencher.best_ns);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut bencher = Bencher {
            best_ns: f64::INFINITY,
        };
        f(&mut bencher, input);
        report(&label, bencher.best_ns);
        self
    }

    /// Ends the group. (The real crate finalises reports here.)
    pub fn finish(self) {}
}

fn report(label: &str, best_ns: f64) {
    if best_ns.is_finite() {
        println!("bench {label:<48} {}", format_ns(best_ns));
    } else {
        println!("bench {label:<48} (no measurement)");
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns/iter")
    }
}

/// Measurement context passed to each benchmark closure.
pub struct Bencher {
    best_ns: f64,
}

impl Bencher {
    /// Times the routine, keeping the best per-iteration wall time
    /// observed within the fixed budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Untimed warm-up run.
        black_box(routine());
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..MAX_ITERS {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed().as_nanos() as f64;
            if elapsed < self.best_ns {
                self.best_ns = elapsed;
            }
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// A benchmark name with an attached parameter, e.g. `extract/500`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one label.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A label that is only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a group of benchmark functions, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let input = vec![1u64, 2, 3];
        group.bench_with_input(
            BenchmarkId::new("sum_input", input.len()),
            &input,
            |b, v| b.iter(|| v.iter().sum::<u64>()),
        );
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_bencher_run() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("extract", 500).to_string(), "extract/500");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
