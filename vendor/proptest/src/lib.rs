//! Offline vendored stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`Strategy`] trait over ranges / tuples / `any` / `collection::vec`,
//! the `proptest!` macro, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Sampling is plain deterministic random
//! generation (no shrinking): each test's RNG is seeded from a hash of
//! the test name, so failures reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies while sampling one test case.
pub type TestRng = StdRng;

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy over a type's full domain; see [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Length specification for [`collection::vec`]: a fixed size or range.
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for vectors of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(strategy, len)` — `len` may be a `usize` or a range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for ordered sets; duplicates drawn from the element
    /// strategy collapse, so the set may be smaller than requested.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `btree_set(strategy, len)` — `len` may be a `usize` or a range.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Seeds a test's RNG deterministically from its name (FNV-1a hash).
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn` runs its body against `cases`
/// random samples of its argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                let strategies = ( $($strat,)+ );
                for case in 0..config.cases {
                    let ( $($arg,)+ ) =
                        $crate::Strategy::sample(&strategies, &mut rng);
                    let run = || $body;
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest: property {} failed on case {}/{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::rng_for_test("ranges_respect_bounds");
        for _ in 0..200 {
            let v = (3usize..20).sample(&mut rng);
            assert!((3..20).contains(&v));
            let f = (0.1f64..10.0).sample(&mut rng);
            assert!((0.1..10.0).contains(&f));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let strat = (
            0u8..3,
            any::<u64>(),
            prop::collection::vec(0.0f64..1.0, 1..6),
        );
        let mut a = crate::rng_for_test("x");
        let mut b = crate::rng_for_test("x");
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = crate::rng_for_test("vec_sizes");
        let strat = prop::collection::vec(0u32..10, 2..40);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..40).contains(&v.len()));
        }
        let fixed = prop::collection::vec(0u32..10, 2);
        assert_eq!(fixed.sample(&mut rng).len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: tuple destructuring, trailing commas, config.
        #[test]
        fn macro_smoke(
            (a, b) in (0u8..4, 1usize..9),
            xs in prop::collection::vec(0.0f64..1.0, 1..5),
        ) {
            prop_assert!(a < 4);
            prop_assert!((1..9).contains(&b));
            prop_assert!(!xs.is_empty() && xs.len() < 5);
        }
    }
}
