//! Offline vendored stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`Strategy`] trait over ranges / tuples / `any` / `collection::vec`,
//! the `proptest!` macro, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Sampling is plain deterministic random
//! generation (no shrinking): each test's RNG is seeded from a hash of
//! the test name, so failures reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies while sampling one test case.
pub type TestRng = StdRng;

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every drawn value through `f`, as in real proptest's
    /// `prop_map` (shrinking is not modelled here, so the mapping is a
    /// plain post-sample transform).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { strategy: self, f }
    }
}

/// Strategy adapter behind [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
}

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy over a type's full domain; see [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Length specification for [`collection::vec`]: a fixed size or range.
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for vectors of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(strategy, len)` — `len` may be a `usize` or a range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for ordered sets; duplicates drawn from the element
    /// strategy collapse, so the set may be smaller than requested.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `btree_set(strategy, len)` — `len` may be a `usize` or a range.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Seeds a test's RNG deterministically from its name (FNV-1a hash).
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// The RNG replaying one persisted or freshly drawn case seed.
pub fn rng_from_seed(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Draws the next case seed from a property's name-seeded seeder RNG.
pub fn next_case_seed(seeder: &mut TestRng) -> u64 {
    seeder.gen()
}

/// Counterexample persistence: failing case seeds are appended to
/// `proptest-regressions/<source path>.txt` (mirroring the source tree
/// under the workspace root) and replayed by every property in that
/// source file before its random phase — so a counterexample found once
/// is re-checked on every CI run forever. Files use the upstream
/// proptest `cc <seed>` line format (hex seeds here) and are meant to be
/// committed.
pub mod persistence {
    use std::path::PathBuf;

    /// One `cc` line: the failing seed plus the property it broke.
    fn format_record(property: &str, seed: u64) -> String {
        format!("cc {seed:#018x} # {property}\n")
    }

    /// Parses the seeds out of a regression file's text. Lines that do
    /// not start with `cc ` (comments, blanks) are ignored; everything
    /// after the seed is commentary.
    pub fn parse_seeds(text: &str) -> Vec<u64> {
        text.lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                let token = rest.split_whitespace().next()?;
                let hex = token.strip_prefix("0x").unwrap_or(token);
                u64::from_str_radix(hex, 16).ok()
            })
            .collect()
    }

    /// Locates the workspace root as the nearest ancestor of the current
    /// directory that actually contains `source_file` (a `file!()` path,
    /// which cargo emits relative to the workspace root).
    fn root_for(source_file: &str) -> Option<PathBuf> {
        let cwd = std::env::current_dir().ok()?;
        for dir in cwd.ancestors() {
            if dir.join(source_file).exists() {
                return Some(dir.to_path_buf());
            }
        }
        None
    }

    /// The regression file for a source file:
    /// `proptest-regressions/crates/foo/tests/bar.txt` for
    /// `crates/foo/tests/bar.rs`.
    pub fn seed_path(source_file: &str) -> Option<PathBuf> {
        let root = root_for(source_file)?;
        let mut rel = PathBuf::from(source_file);
        rel.set_extension("txt");
        Some(root.join("proptest-regressions").join(rel))
    }

    /// Loads every persisted seed for a source file; empty when no
    /// regression file exists (the common case).
    pub fn load(source_file: &str) -> Vec<u64> {
        match seed_path(source_file).map(std::fs::read_to_string) {
            Some(Ok(text)) => parse_seeds(&text),
            _ => Vec::new(),
        }
    }

    /// Appends a failing case's seed to the source file's regression
    /// file, creating it (with a header) on first failure. Best-effort:
    /// persistence must never mask the original test failure, so I/O
    /// errors are reported to stderr and swallowed.
    pub fn record(source_file: &str, property: &str, seed: u64) {
        let Some(path) = seed_path(source_file) else {
            eprintln!("proptest: cannot locate workspace root; seed {seed:#018x} not persisted");
            return;
        };
        let mut contents = match std::fs::read_to_string(&path) {
            Ok(existing) => existing,
            Err(_) => "# Seeds for failure cases proptest has generated in the past.\n\
                 # It is automatically read and these particular cases re-run before\n\
                 # any novel cases are generated. It is recommended to check this file\n\
                 # in to source control so everyone who runs the test benefits from\n\
                 # these saved cases.\n"
                .to_string(),
        };
        let line = format_record(property, seed);
        if contents.contains(line.trim_end()) {
            return;
        }
        contents.push_str(&line);
        let write = path
            .parent()
            .map(std::fs::create_dir_all)
            .unwrap_or(Ok(()))
            .and_then(|()| std::fs::write(&path, contents));
        match write {
            Ok(()) => eprintln!(
                "proptest: persisted failing seed {seed:#018x} to {}",
                path.display()
            ),
            Err(e) => eprintln!("proptest: cannot persist seed to {}: {e}", path.display()),
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn` first replays every seed persisted
/// in this source file's `proptest-regressions/` entry, then runs its
/// body against `cases` fresh random samples of its argument strategies.
/// Each case draws from its own 64-bit seed; a failing seed is appended
/// to the regression file so the counterexample replays deterministically
/// on every future run.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ( $($strat,)+ );
                // Replay phase: persisted counterexamples from this
                // source file, before any new randomness.
                for seed in $crate::persistence::load(file!()) {
                    let mut rng = $crate::rng_from_seed(seed);
                    let ( $($arg,)+ ) =
                        $crate::Strategy::sample(&strategies, &mut rng);
                    let run = || $body;
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest: property {} failed replaying persisted seed {:#018x}",
                            stringify!($name),
                            seed,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
                // Random phase: per-case seeds drawn from a seeder keyed
                // to the property's full name, so runs are deterministic
                // and any failing case is persistable by its seed alone.
                let mut seeder = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let case_seed = $crate::next_case_seed(&mut seeder);
                    let mut rng = $crate::rng_from_seed(case_seed);
                    let ( $($arg,)+ ) =
                        $crate::Strategy::sample(&strategies, &mut rng);
                    let run = || $body;
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        $crate::persistence::record(file!(), stringify!($name), case_seed);
                        eprintln!(
                            "proptest: property {} failed on case {}/{} (seed {:#018x})",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            case_seed,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::rng_for_test("ranges_respect_bounds");
        for _ in 0..200 {
            let v = (3usize..20).sample(&mut rng);
            assert!((3..20).contains(&v));
            let f = (0.1f64..10.0).sample(&mut rng);
            assert!((0.1..10.0).contains(&f));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let strat = (
            0u8..3,
            any::<u64>(),
            prop::collection::vec(0.0f64..1.0, 1..6),
        );
        let mut a = crate::rng_for_test("x");
        let mut b = crate::rng_for_test("x");
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = crate::rng_for_test("vec_sizes");
        let strat = prop::collection::vec(0u32..10, 2..40);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..40).contains(&v.len()));
        }
        let fixed = prop::collection::vec(0u32..10, 2);
        assert_eq!(fixed.sample(&mut rng).len(), 2);
    }

    #[test]
    fn persistence_parses_cc_lines() {
        let text = "# header comment\n\
                    cc 0x00000000deadbeef # cost_always_finite_positive\n\
                    cc 1234abcd\n\
                    not a record\n\
                    \n\
                    cc zzzz # unparsable seed ignored\n";
        assert_eq!(
            crate::persistence::parse_seeds(text),
            vec![0xdead_beef, 0x1234_abcd]
        );
    }

    #[test]
    fn persistence_load_is_empty_without_a_regression_file() {
        assert!(crate::persistence::load("no/such/source_file.rs").is_empty());
    }

    /// End-to-end path resolution against this workspace's committed
    /// regression files: the seeds pinned for the trace generator suite
    /// must be found from any crate's working directory.
    #[test]
    fn persistence_resolves_committed_workspace_seeds() {
        let seeds = crate::persistence::load("crates/trace/tests/gen_properties.rs");
        assert!(
            !seeds.is_empty(),
            "committed proptest-regressions seeds for the trace suite not found"
        );
    }

    #[test]
    fn case_seeds_are_deterministic_per_property_name() {
        let mut a = crate::rng_for_test("suite::prop");
        let mut b = crate::rng_for_test("suite::prop");
        let seeds_a: Vec<u64> = (0..8).map(|_| crate::next_case_seed(&mut a)).collect();
        let seeds_b: Vec<u64> = (0..8).map(|_| crate::next_case_seed(&mut b)).collect();
        assert_eq!(seeds_a, seeds_b);
        let mut c = crate::rng_for_test("suite::other_prop");
        assert_ne!(seeds_a[0], crate::next_case_seed(&mut c));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: tuple destructuring, trailing commas, config.
        #[test]
        fn macro_smoke(
            (a, b) in (0u8..4, 1usize..9),
            xs in prop::collection::vec(0.0f64..1.0, 1..5),
        ) {
            prop_assert!(a < 4);
            prop_assert!((1..9).contains(&b));
            prop_assert!(!xs.is_empty() && xs.len() < 5);
        }
    }
}
