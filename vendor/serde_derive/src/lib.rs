//! Offline vendored stand-in for `serde_derive`.
//!
//! `syn`/`quote` cannot be fetched in this offline build environment, so
//! the item grammar is parsed directly from the `proc_macro` token
//! stream. Supported shapes — which cover every derive site in this
//! workspace — are:
//!
//! * structs with named fields (`#[serde(skip)]`, `#[serde(default)]`
//!   and `#[serde(alias = "...")]` honoured; `Option` fields tolerate
//!   absent keys),
//! * tuple structs (newtypes serialize transparently and additionally
//!   implement `serde::MapKey` so they can key maps),
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching real serde's JSON representation).
//!
//! Generic types are intentionally rejected; none exist in this
//! workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field of a named struct or struct variant.
struct Field {
    name: String,
    skip: bool,
    default: bool,
    is_option: bool,
    alias: Option<String>,
}

/// A parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// A parsed derive input item.
enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---- parsing ---------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i, &mut Vec::new());

    let keyword = ident_text(&tokens, i).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_text(&tokens, i).expect("expected type name");
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (deriving `{name}`)");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::NamedStruct {
                name,
                fields: Vec::new(),
            },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Advances past outer attributes and a visibility modifier, collecting
/// the idents inside any `#[serde(...)]` helper attribute into
/// `serde_flags`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize, serde_flags: &mut Vec<String>) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    collect_serde_flags(&g.stream(), serde_flags);
                    *i += 2;
                } else {
                    panic!("dangling `#` in derive input");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Records flags from a `serde(...)` attribute body. Bare `skip` /
/// `default` flags are pushed verbatim; `alias = "name"` is pushed as
/// `alias=name`.
fn collect_serde_flags(attr_body: &TokenStream, flags: &mut Vec<String>) {
    let tokens: Vec<TokenTree> = attr_body.clone().into_iter().collect();
    if let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) =
        (tokens.first(), tokens.get(1))
    {
        if name.to_string() == "serde" {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut i = 0;
            while i < args.len() {
                match &args[i] {
                    TokenTree::Ident(flag) => {
                        let flag = flag.to_string();
                        match flag.as_str() {
                            "skip" | "default" => {
                                flags.push(flag);
                                i += 1;
                            }
                            "alias" => {
                                assert!(
                                    matches!(&args.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '='),
                                    "expected `=` after `alias`"
                                );
                                let lit = match args.get(i + 2) {
                                    Some(TokenTree::Literal(l)) => l.to_string(),
                                    other => {
                                        panic!("expected string after `alias =`, found {other:?}")
                                    }
                                };
                                let alias = lit.trim_matches('"');
                                assert!(
                                    !alias.is_empty() && lit.starts_with('"'),
                                    "`alias` takes a non-empty string literal, found {lit}"
                                );
                                flags.push(format!("alias={alias}"));
                                i += 3;
                            }
                            other => panic!(
                                "vendored serde_derive supports only #[serde(skip)] / \
                                 #[serde(default)] / #[serde(alias = \"...\")], found `{other}`"
                            ),
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                    other => panic!("unexpected token in #[serde(...)]: {other:?}"),
                }
            }
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut flags = Vec::new();
        skip_attrs_and_vis(&tokens, &mut i, &mut flags);
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(&tokens, i).expect("expected field name");
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        // The type: everything up to the next top-level comma. Only the
        // head ident matters (to spot `Option`); depth tracking skips
        // commas inside generic args, which arrive as plain punct tokens.
        let mut depth = 0i32;
        let mut head: Option<String> = None;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Ident(id) if head.is_none() => head = Some(id.to_string()),
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field {
            name: name.trim_start_matches("r#").to_string(),
            skip: flags.iter().any(|f| f == "skip"),
            default: flags.iter().any(|f| f == "default"),
            is_option: head.as_deref() == Some("Option"),
            alias: flags
                .iter()
                .find_map(|f| f.strip_prefix("alias=").map(str::to_string)),
        });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i, &mut Vec::new());
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(&tokens, i).expect("expected variant name");
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("explicit discriminants are not supported (variant `{name}`)");
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn ident_text(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

// ---- code generation -------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    match item {
        Input::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{0}\"), \
                     serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(__fields)\n\
                     }}\n\
                 }}\n"
            )
        }
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            let mapkey = if *arity == 1 {
                format!(
                    "impl serde::MapKey for {name} {{\n\
                         fn to_key(&self) -> ::std::string::String {{\n\
                             serde::MapKey::to_key(&self.0)\n\
                         }}\n\
                         fn from_key(__k: &str) -> ::std::result::Result<Self, serde::Error> {{\n\
                             ::std::result::Result::Ok({name}(serde::MapKey::from_key(__k)?))\n\
                         }}\n\
                     }}\n"
                )
            } else {
                String::new()
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         {body}\n\
                     }}\n\
                 }}\n\
                 {mapkey}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> =
                            (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "__inner.push((::std::string::String::from(\"{0}\"), \
                                 serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                                 let mut __inner: ::std::vec::Vec<(::std::string::String, serde::Value)> = \
                                     ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                  serde::Value::Object(__inner))])\n\
                             }}\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

/// The init line of one named field in a generated `from_value`.
/// `source` is the in-scope binding of the parsed key/value pairs.
fn field_init(f: &Field, source: &str) -> String {
    if f.skip {
        return format!("{}: ::core::default::Default::default(),\n", f.name);
    }
    let helper = if f.is_option {
        "de_field_opt"
    } else if f.default {
        "de_field_default"
    } else {
        "de_field"
    };
    match &f.alias {
        Some(alias) => format!(
            "{0}: serde::__private::{helper}_alias({source}, \"{0}\", \"{alias}\")?,\n",
            f.name
        ),
        None => format!(
            "{0}: serde::__private::{helper}({source}, \"{0}\")?,\n",
            f.name
        ),
    }
}

fn gen_deserialize(item: &Input) -> String {
    match item {
        Input::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&field_init(f, "__fields"));
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         let __fields = __v.as_object().ok_or_else(|| \
                             serde::Error::expected(\"object\", __v))?;\n\
                         let _ = &__fields;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}\n"
            )
        }
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))")
            } else {
                let gets: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __v.as_array().ok_or_else(|| \
                         serde::Error::expected(\"array\", __v))?;\n\
                     if __items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(serde::Error::custom(\
                             format!(\"expected array of {arity}, found {{}}\", __items.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    gets.join(", ")
                )
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}\n"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vname}(\
                                 serde::Deserialize::from_value(__val)?))"
                            )
                        } else {
                            let gets: Vec<String> = (0..*arity)
                                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            format!(
                                "let __items = __val.as_array().ok_or_else(|| \
                                     serde::Error::expected(\"array\", __val))?;\n\
                                 if __items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(serde::Error::custom(\
                                         \"wrong tuple variant arity\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))",
                                gets.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vname}\" => {{ {body} }}\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&field_init(f, "__obj"));
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __obj = __val.as_object().ok_or_else(|| \
                                     serde::Error::expected(\"object\", __val))?;\n\
                                 let _ = &__obj;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         match __v {{\n\
                             serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(serde::Error::custom(\
                                     format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                             }},\n\
                             serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                                 let (__tag, __val) = &__fields[0];\n\
                                 let _ = &__val;\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\
                                     __other => ::std::result::Result::Err(serde::Error::custom(\
                                         format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(\
                                 serde::Error::expected(\"variant of `{name}`\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}
