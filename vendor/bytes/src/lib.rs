//! Offline vendored stand-in for `bytes`.
//!
//! Implements the subset of the `bytes` API the trace codec uses:
//! big-endian `get_*`/`put_*` accessors on `&[u8]` and a growable
//! `BytesMut` that freezes into an immutable, cheaply-cloneable `Bytes`.

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a byte source (big-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }
}

/// Write cursor appending to a growable byte sink (big-endian).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(300);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        buf.put_f64(3.25);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 300);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_f64(), 3.25);
        assert_eq!(r, b"xyz");
    }

    #[test]
    fn advance_and_remaining() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        assert_eq!(r.remaining(), 4);
        r.advance(2);
        assert_eq!(r.chunk(), &[3, 4]);
    }
}
